package regcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kagent"
	"repro/internal/mm"
	"repro/internal/pgtable"
	"repro/internal/proc"
	"repro/internal/simtime"
	"repro/internal/via"
	"repro/internal/vipl"
)

// gatedLocker wraps another locker and blocks every Lock call until the
// gate closes, so tests can hold a registration in flight while other
// goroutines pile up on the cache.
type gatedLocker struct {
	inner   core.Locker
	gate    chan struct{}
	entered chan struct{} // receives one signal per Lock call
	fail    atomic.Bool   // when set, Lock returns an error after the gate
}

func (g *gatedLocker) Name() core.Strategy { return g.inner.Name() }

func (g *gatedLocker) Lock(k *mm.Kernel, as *mm.AddressSpace, addr pgtable.VAddr, length int) (*core.Lock, error) {
	g.entered <- struct{}{}
	<-g.gate
	if g.fail.Load() {
		return nil, fmt.Errorf("gatedLocker: forced failure")
	}
	return g.inner.Lock(k, as, addr, length)
}

// gatedRig builds a node whose kernel agent locks through a gatedLocker.
func gatedRig(t *testing.T, tptSlots int) (*rig, *gatedLocker) {
	t.Helper()
	meter := simtime.NewMeter()
	k := mm.NewKernel(mm.Config{RAMPages: 512, SwapPages: 1024, ClockBatch: 64, SwapBatch: 16}, meter)
	n := via.NewNIC("node", k.Phys(), meter, tptSlots)
	g := &gatedLocker{
		inner:   core.MustNew(core.StrategyKiobuf),
		gate:    make(chan struct{}),
		entered: make(chan struct{}, 64),
	}
	agent := kagent.New(k, n, g)
	p := proc.New(k, "app", false)
	return &rig{k: k, p: p, nic: vipl.OpenNic(agent, p)}, g
}

// TestSingleFlight: N concurrent misses on one key perform exactly one
// kernel registration; the other N−1 goroutines wait on the in-flight
// entry and share its region.
func TestSingleFlight(t *testing.T) {
	const workers = 8
	r, gate := gatedRig(t, 64)
	c := New(r.nic, 0)
	b := r.buf(t, 2)

	regions := make([]*vipl.MemRegion, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			regions[i], errs[i] = c.Acquire(b, 0, b.Bytes, via.MemAttrs{}, ClassUser)
		}(i)
	}
	// The leader is inside the (blocked) kernel call; give the followers
	// a moment to park on the in-flight entry, then open the gate.
	<-gate.entered
	time.Sleep(20 * time.Millisecond)
	close(gate.gate)
	wg.Wait()

	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if regions[i] != regions[0] {
			t.Fatalf("worker %d got a different region", i)
		}
	}
	if got := r.nic.Agent().Registrations(); got != 1 {
		t.Fatalf("%d kernel registrations, want exactly 1", got)
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (single flight)", st.Misses)
	}
	if st.Hits != workers-1 {
		t.Fatalf("hits = %d, want %d", st.Hits, workers-1)
	}
	for i := range regions {
		if err := c.Release(regions[i]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSingleFlightFailure: a failed in-flight registration propagates its
// error to every waiter and leaves no cache entry behind.
func TestSingleFlightFailure(t *testing.T) {
	const workers = 6
	r, gate := gatedRig(t, 64)
	gate.fail.Store(true)
	c := New(r.nic, 0)
	b := r.buf(t, 1)

	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Acquire(b, 0, b.Bytes, via.MemAttrs{}, ClassUser)
		}(i)
	}
	<-gate.entered
	time.Sleep(20 * time.Millisecond)
	close(gate.gate)
	// Late arrivals retry as new leaders; drain their gate entries too.
	go func() {
		for range gate.entered {
		}
	}()
	wg.Wait()
	close(gate.entered)

	for i := 0; i < workers; i++ {
		if errs[i] == nil {
			t.Fatalf("worker %d: registration succeeded despite forced failure", i)
		}
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("len = %d after failed registration, want 0", got)
	}
	if got := r.nic.Agent().Registrations(); got != 0 {
		t.Fatalf("%d registrations leaked", got)
	}
	if st := c.Stats(); st.Failures == 0 {
		t.Fatalf("failures not counted: %+v", st)
	}
}

// TestConcurrentStress hammers one cache from many goroutines over a
// small TPT with a mixed hit/miss workload, then checks that nothing was
// lost: every success had a matching release, the stats balance, and a
// final flush returns the node to its boot state.  Run under -race.
func TestConcurrentStress(t *testing.T) {
	const (
		workers = 8
		iters   = 300
		tpt     = 24
	)
	r := newRig(t, tpt)
	c := New(r.nic, 8)

	shared := make([]*proc.Buffer, 4)
	for i := range shared {
		shared[i] = r.buf(t, 1)
	}
	private := make([][]*proc.Buffer, workers)
	for w := range private {
		private[w] = []*proc.Buffer{r.buf(t, 1), r.buf(t, 1)}
	}

	var successes atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var b *proc.Buffer
				switch {
				case i%5 == 4:
					b = private[w][i%2]
				default:
					b = shared[(i+w)%len(shared)]
				}
				reg, err := c.Acquire(b, 0, b.Bytes, via.MemAttrs{}, ClassUser)
				if err != nil {
					// TPT exhaustion by in-use regions is legal under this
					// much concurrency; anything else is a bug.
					if !errors.Is(err, ErrBusy) {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					continue
				}
				successes.Add(1)
				if err := c.Release(reg); err != nil {
					t.Errorf("worker %d: release: %v", w, err)
					return
				}
				if w == 0 && i%64 == 63 {
					if _, err := c.Flush(); err != nil {
						t.Errorf("flush: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	st := c.Stats()
	if got := st.Hits + st.Misses - st.Failures; got != successes.Load() {
		t.Fatalf("stats don't balance: hits %d + misses %d - failures %d = %d, want %d successes",
			st.Hits, st.Misses, st.Failures, got, successes.Load())
	}
	if st.EvictErrors != 0 {
		t.Fatalf("evict errors: %+v", st)
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("len = %d after final flush", got)
	}
	if got := r.nic.Agent().Registrations(); got != 0 {
		t.Fatalf("%d kernel registrations leaked", got)
	}
	if free := r.nic.Agent().NIC().FreeTPTSlots(); free != tpt {
		t.Fatalf("TPT slots leaked: %d free of %d", free, tpt)
	}
}

// TestEvictErrorsCounted: a region deregistered behind the cache's back
// makes the eviction deregistration fail; the failure must land in
// Stats.EvictErrors instead of vanishing.
func TestEvictErrorsCounted(t *testing.T) {
	r := newRig(t, 64)
	c := New(r.nic, 1)
	b := r.buf(t, 1)
	reg, err := c.Acquire(b, 0, b.Bytes, via.MemAttrs{}, ClassUser)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: deregister directly, bypassing the cache.
	if err := r.nic.DeregisterMem(reg); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(reg); err != nil {
		t.Fatal(err)
	}
	// Cap is 1; a second acquire trims the sabotaged region and must
	// record the deregistration failure.
	b2 := r.buf(t, 1)
	reg2, err := c.Acquire(b2, 0, b2.Bytes, via.MemAttrs{}, ClassUser)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.EvictErrors != 1 {
		t.Fatalf("evict errors = %d, want 1 (%+v)", st.EvictErrors, st)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	_ = c.Release(reg2)
}

// TestFlushReportsDeregErrors: Flush must surface a deregistration error
// and still count the eviction.
func TestFlushReportsDeregErrors(t *testing.T) {
	r := newRig(t, 64)
	c := New(r.nic, 0)
	b := r.buf(t, 1)
	reg, err := c.Acquire(b, 0, b.Bytes, via.MemAttrs{}, ClassUser)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.nic.DeregisterMem(reg); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(reg); err != nil {
		t.Fatal(err)
	}
	dropped, err := c.Flush()
	if err == nil {
		t.Fatal("flush swallowed the deregistration error")
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	if st := c.Stats(); st.EvictErrors != 1 {
		t.Fatalf("evict errors = %d, want 1", st.EvictErrors)
	}
}
