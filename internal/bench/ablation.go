package bench

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mm"
	"repro/internal/phys"
	"repro/internal/pressure"
	"repro/internal/proc"
	"repro/internal/regcache"
	"repro/internal/report"
	"repro/internal/simtime"
	"repro/internal/via"
	"repro/internal/vipl"
)

// Ablations regenerates the DESIGN.md §5 design-choice studies:
//
//	A1  registration-cache eviction: class-priority vs plain global LRU
//	A2  immediate-data fast path: 4-byte send with vs without it
//	A3  swap second chance: hot-working-set major faults with/without
//	A4  reclaim skip rules: PG_* flags vs kernel pins when a kernel
//	    stops honouring the flags
func Ablations(w io.Writer) error {
	if err := ablationEviction(w); err != nil {
		return fmt.Errorf("eviction: %w", err)
	}
	if err := ablationImmediate(w); err != nil {
		return fmt.Errorf("immediate: %w", err)
	}
	if err := ablationSecondChance(w); err != nil {
		return fmt.Errorf("second-chance: %w", err)
	}
	if err := ablationIgnoreLocks(w); err != nil {
		return fmt.Errorf("ignore-locks: %w", err)
	}
	return nil
}

// ablationEviction compares the CHEMPI class rule with a plain LRU on a
// workload where a library region is reused every few rounds while user
// buffers churn constantly.  Plain LRU evicts the idle library region;
// the class rule sacrifices user regions instead.
func ablationEviction(w io.Writer) error {
	t := report.Table{
		Title:   "A1: regcache eviction policy — library-region misses over 64 rounds",
		Note:    "library buffer reused every 4th round, user buffers churn every round, TPT is 4 regions tight; CHEMPI's class rule protects the hot library region",
		Headers: []string{"policy", "lib-misses", "total-evictions"},
	}
	for _, pol := range []struct {
		name string
		p    regcache.Policy
	}{
		{"class-lru (CHEMPI)", regcache.PolicyClassLRU},
		{"global-lru", regcache.PolicyGlobalLRU},
	} {
		libMisses, evictions, err := evictionWorkload(pol.p)
		if err != nil {
			return err
		}
		t.AddRow(pol.name, libMisses, evictions)
	}
	t.Fprint(w)
	return nil
}

func evictionWorkload(p regcache.Policy) (libMisses int, evictions uint64, err error) {
	c, node, err := oneNode(core.StrategyKiobuf)
	if err != nil {
		return 0, 0, err
	}
	_ = c
	// TPT of 8 slots, regions of 2 pages → at most 4 cached regions.
	nic := via.NewNIC("ablate", node.Kernel.Phys(), node.Kernel.Meter(), 8)
	pr := node.NewProcess("app", false)
	h := vipl.OpenNic(kagentFor(node, nic), pr)
	cache := regcache.NewWithPolicy(h, 0, p)

	lib, err := pr.Malloc(2 * phys.PageSize)
	if err != nil {
		return 0, 0, err
	}
	const rounds = 64
	for i := 0; i < rounds; i++ {
		if i%4 == 0 {
			before := cache.Stats().Misses
			reg, err := cache.Acquire(lib, 0, lib.Bytes, via.MemAttrs{}, regcache.ClassLibrary)
			if err != nil {
				return 0, 0, err
			}
			if cache.Stats().Misses > before {
				libMisses++
			}
			if err := cache.Release(reg); err != nil {
				return 0, 0, err
			}
		}
		user, err := pr.Malloc(2 * phys.PageSize)
		if err != nil {
			return 0, 0, err
		}
		reg, err := cache.Acquire(user, 0, user.Bytes, via.MemAttrs{}, regcache.ClassUser)
		if err != nil {
			return 0, 0, err
		}
		if err := cache.Release(reg); err != nil {
			return 0, 0, err
		}
	}
	return libMisses, cache.Stats().Evictions, nil
}

// ablationImmediate quantifies the immediate-data fast path: a 4-byte
// payload inside the descriptor saves both DMA data transactions.
func ablationImmediate(w io.Writer) error {
	c, err := cluster.New(cluster.Config{Nodes: 2, Strategy: core.StrategyKiobuf})
	if err != nil {
		return err
	}
	a, b := c.Nodes[0], c.Nodes[1]
	pa, pb := a.NewProcess("s", false), b.NewProcess("r", false)
	tagA, tagB := via.ProtectionTag(pa.ID()), via.ProtectionTag(pb.ID())
	srcBuf, err := pa.Malloc(phys.PageSize)
	if err != nil {
		return err
	}
	dstBuf, err := pb.Malloc(phys.PageSize)
	if err != nil {
		return err
	}
	regA, err := a.Agent.RegisterMem(pa.AS(), srcBuf.Addr, srcBuf.Bytes, tagA, via.MemAttrs{})
	if err != nil {
		return err
	}
	regB, err := b.Agent.RegisterMem(pb.AS(), dstBuf.Addr, dstBuf.Bytes, tagB, via.MemAttrs{})
	if err != nil {
		return err
	}
	viA, err := a.NIC.CreateVI(tagA)
	if err != nil {
		return err
	}
	viB, err := b.NIC.CreateVI(tagB)
	if err != nil {
		return err
	}
	if err := c.Network.Connect(viA, viB); err != nil {
		return err
	}

	measure := func(immediate bool) (simtime.Duration, error) {
		rd := via.NewDescriptor(via.OpRecv, via.Segment{Handle: regB.Handle, Offset: 0, Length: 64})
		if err := viB.PostRecv(rd); err != nil {
			return 0, err
		}
		var sd *via.Descriptor
		if immediate {
			sd = via.NewDescriptor(via.OpSend)
			sd.Immediate = [4]byte{1, 2, 3, 4}
			sd.HasImmediate = true
		} else {
			sd = via.NewDescriptor(via.OpSend, via.Segment{Handle: regA.Handle, Offset: 0, Length: 4})
		}
		sw := c.Meter.Start()
		if err := viA.PostSend(sd); err != nil {
			return 0, err
		}
		if st := sd.Wait(); st != via.StatusSuccess {
			return 0, fmt.Errorf("send: %v", st)
		}
		return sw.Elapsed(), nil
	}
	viaSeg, err := measure(false)
	if err != nil {
		return err
	}
	viaImm, err := measure(true)
	if err != nil {
		return err
	}
	t := report.Table{
		Title:   "A2: immediate-data fast path — 4-byte send latency",
		Note:    "immediate data rides in the descriptor, saving the data-fetch and data-store DMA transactions",
		Headers: []string{"variant", "latency (sim µs)"},
	}
	t.AddRow("gather segment", viaSeg.Micros())
	t.AddRow("immediate data", viaImm.Micros())
	t.Fprint(w)
	return nil
}

// ablationSecondChance shows what the accessed-bit second chance buys: a
// process with a hot working set suffers far more major faults when the
// swap path may evict recently-touched pages.
func ablationSecondChance(w io.Writer) error {
	t := report.Table{
		Title:   "A3: swap-path second chance — hot working set under cold pressure",
		Note:    "64 hot pages touched every step while a hog grows; without the accessed-bit check the hot set keeps getting evicted",
		Headers: []string{"second-chance", "major-faults", "swap-outs"},
	}
	for _, disable := range []bool{false, true} {
		mf, so, err := secondChanceWorkload(disable)
		if err != nil {
			return err
		}
		t.AddRow(report.Bool(!disable), mf, so)
	}
	t.Fprint(w)
	return nil
}

func secondChanceWorkload(noSecondChance bool) (majorFaults, swapOuts uint64, err error) {
	cfg := mm.Config{
		RAMPages: 512, SwapPages: 4096, ClockBatch: 64, SwapBatch: 16,
		NoSecondChance: noSecondChance,
	}
	k := mm.NewKernel(cfg, simtime.NewMeter())
	hot := proc.New(k, "hot", false)
	hotBuf, err := hot.Malloc(64 * phys.PageSize)
	if err != nil {
		return 0, 0, err
	}
	hog := pressure.NewHog(k)
	defer func() { _ = hog.Release() }()
	for step := 0; step < 16; step++ {
		if err := hotBuf.Touch(); err != nil {
			return 0, 0, err
		}
		if _, err := hog.Grow(48); err != nil {
			return 0, 0, err
		}
	}
	st := k.Stats()
	return st.MajorFaults, st.SwapOuts, nil
}

// ablationIgnoreLocks runs the survival experiment on a hypothetical
// kernel whose reclaim no longer honours PG_locked/PG_reserved: the
// flag-based strategy silently loses its pages while kernel pins (the
// kiobuf contract) still hold.
func ablationIgnoreLocks(w io.Writer) error {
	t := report.Table{
		Title:   "A4: reclaim skip rules — kernel that ignores PG_* flags",
		Note:    "the Giganet approach depends on a reclaim implementation detail; the kiobuf pin is an interface contract and survives the kernel change",
		Headers: []string{"strategy", "tpt-consistent", "verdict"},
	}
	for _, s := range []core.Strategy{core.StrategyPageFlag, core.StrategyKiobuf} {
		consistent, total, err := ignoreLocksRun(s)
		if err != nil {
			return err
		}
		verdict := "BROKEN"
		if consistent == total {
			verdict = "RELIABLE"
		}
		t.AddRow(string(s), fmt.Sprintf("%d/%d", consistent, total), verdict)
	}
	t.Fprint(w)
	return nil
}

func ignoreLocksRun(s core.Strategy) (consistent, total int, err error) {
	cfg := mm.Config{
		RAMPages: 512, SwapPages: 4096, ClockBatch: 64, SwapBatch: 16,
		IgnorePageLocks: true,
	}
	k := mm.NewKernel(cfg, simtime.NewMeter())
	nic := via.NewNIC("ablate", k.Phys(), k.Meter(), 256)
	agent := kagentNew(k, nic, s)
	pr := proc.New(k, "app", false)
	buf, err := pr.Malloc(16 * phys.PageSize)
	if err != nil {
		return 0, 0, err
	}
	reg, err := agent.RegisterMem(pr.AS(), buf.Addr, buf.Bytes, via.ProtectionTag(pr.ID()), via.MemAttrs{})
	if err != nil {
		return 0, 0, err
	}
	if _, err := pressure.Level(k, 1.5); err != nil {
		return 0, 0, err
	}
	if err := buf.Touch(); err != nil {
		return 0, 0, err
	}
	return agent.ConsistentPages(reg)
}
