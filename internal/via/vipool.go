package via

import (
	"errors"
	"sync"
)

// VIPool recycles connected VIs to one peer.  Connection setup is the
// expensive operation at scale (a Dial/Accept round trip through the
// connection manager), so callers that talk to the same peer repeatedly
// keep a pool per peer: Get hands out an idle connected VI or dials a
// fresh one through the supplied factory, Put returns a VI that is
// still healthy and drops one that is not.  The pool never resurrects
// an errored VI — per the spec's recovery discipline an errored VI must
// go through an explicit Reset, which is the owner's decision, not the
// pool's.
//
// The pool is safe for concurrent use.
type VIPool struct {
	mu     sync.Mutex
	idle   []*VI
	closed bool

	dial func() (*VI, error)
	max  int // bound on idle VIs retained (not on outstanding VIs)

	hits     uint64
	misses   uint64
	discards uint64
}

// VIPoolStats counts pool activity.
type VIPoolStats struct {
	Idle     int    // connected VIs currently pooled
	Hits     uint64 // Gets served from the pool
	Misses   uint64 // Gets that dialed a fresh VI
	Discards uint64 // VIs dropped (unhealthy on Get/Put, or pool full)
}

// ErrPoolClosed reports a Get on a closed pool.
var ErrPoolClosed = errors.New("via: VI pool closed")

// NewVIPool builds a pool bounded at max idle VIs (max <= 0 selects 16).
// dial must return a VI connected to the pool's peer; it is called
// outside the pool lock.
func NewVIPool(max int, dial func() (*VI, error)) *VIPool {
	if max <= 0 {
		max = 16
	}
	return &VIPool{dial: dial, max: max}
}

// Get returns a connected VI to the peer: pooled when one is idle and
// still healthy, freshly dialed otherwise.
func (p *VIPool) Get() (*VI, error) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, ErrPoolClosed
		}
		n := len(p.idle)
		if n == 0 {
			p.misses++
			p.mu.Unlock()
			return p.dial()
		}
		v := p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
		// Health is re-checked at Get time: a fault may have errored the
		// VI while it sat idle.  Unhealthy VIs are discarded, not reset.
		if v.State() == VIConnected {
			p.hits++
			p.mu.Unlock()
			return v, nil
		}
		p.discards++
		p.mu.Unlock()
	}
}

// Put returns a VI to the pool.  VIs that are no longer connected, and
// VIs beyond the idle bound, are dropped (the caller keeps ownership of
// an errored VI's Reset).  Reports whether the VI was retained.
func (p *VIPool) Put(v *VI) bool {
	if v == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || v.State() != VIConnected || len(p.idle) >= p.max {
		p.discards++
		return false
	}
	p.idle = append(p.idle, v)
	return true
}

// Drain empties the pool, handing every idle VI to fn (e.g. a
// disconnect); the pool stays usable.
func (p *VIPool) Drain(fn func(*VI)) {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, v := range idle {
		if fn != nil {
			fn(v)
		}
	}
}

// Close marks the pool closed and drains it through fn.  Subsequent
// Gets fail with ErrPoolClosed; Puts discard.
func (p *VIPool) Close(fn func(*VI)) {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.Drain(fn)
}

// Stats snapshots the pool counters.
func (p *VIPool) Stats() VIPoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return VIPoolStats{
		Idle:     len(p.idle),
		Hits:     p.hits,
		Misses:   p.misses,
		Discards: p.discards,
	}
}
