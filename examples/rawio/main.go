// Rawio: the kiobuf facility's original job — RAW device I/O straight
// to and from user memory — and the flag-ownership hazard the paper
// pins on the Giganet approach.  The example writes a file image to a
// raw device zero-copy, reads it back, and then shows a pageflag-style
// VIA deregistration clobbering the PG_locked bit of a page that a
// kernel I/O still owns.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/phys"
	"repro/internal/rawio"
)

func main() {
	c := cluster.MustNew(cluster.Config{Nodes: 1, Strategy: core.StrategyKiobuf})
	node := c.Nodes[0]
	p := node.NewProcess("dbms", false)
	dev := rawio.NewDevice(node.Kernel, 1<<20)

	// Zero-copy raw write + read-back.
	table, err := p.Malloc(16 * phys.PageSize)
	if err != nil {
		log.Fatal(err)
	}
	if err := table.FillPattern(3); err != nil {
		log.Fatal(err)
	}
	if err := dev.Write(p.AS(), table.Addr, 0, table.Bytes); err != nil {
		log.Fatal(err)
	}
	check, err := p.Malloc(16 * phys.PageSize)
	if err != nil {
		log.Fatal(err)
	}
	if err := dev.Read(p.AS(), check.Addr, 0, check.Bytes); err != nil {
		log.Fatal(err)
	}
	bad, err := check.VerifyPattern(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw round trip: %d pages, %d corrupted — kiobuf path, no bounce buffers\n",
		check.Pages(), len(bad))
	st := dev.Stats()
	fmt.Printf("device: %d requests, %d sectors written, %d read\n\n",
		st.Requests, st.SectorsWritten, st.SectorsRead)

	// The hazard: kernel I/O holds PG_locked on a page; a Giganet-style
	// registration of the same buffer is deregistered in between.
	buf, err := p.Malloc(phys.PageSize)
	if err != nil {
		log.Fatal(err)
	}
	if err := buf.Touch(); err != nil {
		log.Fatal(err)
	}
	pfns, err := buf.ResidentPFNs()
	if err != nil {
		log.Fatal(err)
	}
	if err := node.Kernel.LockPageIO(pfns[0]); err != nil {
		log.Fatal(err)
	}
	locker := core.MustNew(core.StrategyPageFlag)
	l, err := locker.Lock(node.Kernel, p.AS(), buf.Addr, phys.PageSize)
	if err != nil {
		log.Fatal(err)
	}
	if err := l.Unlock(); err != nil { // ...clears PG_locked unconditionally
		log.Fatal(err)
	}
	if err := node.Kernel.UnlockPageIO(pfns[0]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pageflag deregistration during kernel I/O: %d PG_locked clobber(s) detected\n",
		node.Kernel.IOClobberCount())
	fmt.Println("(the kiobuf mechanism never touches the flag — see examples/multireg)")
}
