package via

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// Completion is one completion-queue entry: which VI completed which
// descriptor, and on which of its queues.
type Completion struct {
	// VI is the virtual interface the work belonged to.
	VI *VI
	// Desc is the completed descriptor (Status already final).
	Desc *Descriptor
	// Recv reports whether the descriptor came off the receive queue.
	Recv bool
}

// CQ is a completion queue.  VIs created with CreateVIWithCQ deposit a
// completion notification for every descriptor they finish, so one
// thread can wait on many VIs at once (VipCQWait in the VIPL).
//
// Internally the queue is sharded: producers hash by VI uid to a shard
// and take only that shard's mutex, so completions from thousands of
// VIs do not serialize on one lock the way the old single mutex+cond
// design did.  Consumers rotate over the shards.  Ordering guarantee:
// completions of one VI are FIFO (they land in one shard); ordering
// across VIs is unspecified, as on hardware.  Small queues (depth below
// one shard's worth) collapse to a single shard, preserving exact
// global FIFO + overflow semantics for legacy callers.
type CQ struct {
	shards []cqShard
	// depth bounds the total entries across all shards; shard buffers
	// grow on demand, so a single busy VI may use the whole depth.
	depth int

	size    atomic.Int64  // entries currently queued (all shards)
	dropped atomic.Uint64 // entries lost to overflow
	wakeups atomic.Uint64 // waiter parks that ended in a notify wake
	closed  atomic.Bool

	// notify is the consumer wakeup baton (capacity 1, coalescing);
	// closedCh wakes every waiter at Close.
	notify   chan struct{}
	closedCh chan struct{}
	// rr rotates Poll's shard scan start so one busy shard cannot
	// starve the others.
	rr atomic.Uint64

	// nic is the owning NIC when created through CreateCQ (nil for a
	// standalone NewCQ); overflow events are surfaced through its
	// observer.
	nic *NIC
}

type cqShard struct {
	mu   sync.Mutex
	buf  []Completion // growable ring buffer
	head int
	n    int
}

// Errors returned by completion queues.
var (
	ErrCQEmpty  = errors.New("via: completion queue empty")
	ErrCQClosed = errors.New("via: completion queue closed")
	// ErrCQOverflow reports that the queue dropped completions: the
	// consumer fell behind by more than the queue depth.  On hardware
	// this is a programming error the card flags; OverflowErr surfaces
	// it, and each drop is also counted in trace/metrics when an
	// observer is attached.
	ErrCQOverflow = errors.New("via: completion queue overflow")
)

// DefaultCQDepth bounds a queue when no depth is given.
const DefaultCQDepth = 256

// cqMaxShards caps the shard count; cqShardEntries is the depth one
// shard serves — queues smaller than twice this stay single-sharded so
// exact-depth tests and tiny legacy queues keep strict FIFO.
const (
	cqMaxShards    = 16
	cqShardEntries = 32
)

// NewCQ creates a standalone completion queue holding up to depth
// entries.  Overflow drops the oldest entry of the full shard and
// counts it — matching hardware behaviour where CQ overflow is a
// programming error the card reports.
func NewCQ(depth int) *CQ {
	if depth <= 0 {
		depth = DefaultCQDepth
	}
	nshards := depth / cqShardEntries
	if nshards < 1 {
		nshards = 1
	}
	if nshards > cqMaxShards {
		nshards = cqMaxShards
	}
	q := &CQ{
		shards:   make([]cqShard, nshards),
		depth:    depth,
		notify:   make(chan struct{}, 1),
		closedCh: make(chan struct{}),
	}
	return q
}

// CreateCQ creates a completion queue bound to this NIC (overflow is
// reported through the NIC's observer).
func (n *NIC) CreateCQ(depth int) *CQ {
	q := NewCQ(depth)
	q.nic = n
	return q
}

// CreateVIWithCQ creates a VI whose send and receive completions are
// delivered to the given queues.  Either queue may be nil (no
// notification for that direction), and both may be the same queue.
func (n *NIC) CreateVIWithCQ(tag ProtectionTag, sendCQ, recvCQ *CQ) (*VI, error) {
	v, err := n.CreateVI(tag)
	if err != nil {
		return nil, err
	}
	v.sendCQ = sendCQ
	v.recvCQ = recvCQ
	return v, nil
}

// shardFor hashes a completion to its shard (per-VI FIFO: one VI always
// lands in one shard).
func (q *CQ) shardFor(c Completion) *cqShard {
	if len(q.shards) == 1 || c.VI == nil {
		return &q.shards[0]
	}
	return &q.shards[c.VI.uid%uint64(len(q.shards))]
}

// push deposits a completion (called by the NIC with no locks held).
func (q *CQ) push(c Completion) {
	if q == nil || q.closed.Load() {
		return
	}
	s := q.shardFor(c)
	s.mu.Lock()
	if q.closed.Load() {
		s.mu.Unlock()
		return
	}
	q.insertLocked(s, c)
	s.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// pushBatch deposits a run of completions with one notify and one lock
// acquisition per same-shard run, instead of one of each per entry.
// The NIC's flush paths (batch overflow, VI error/reset) and the
// engine's coalesced drains use it so completing a burst does not turn
// back into per-entry wakeup traffic.
func (q *CQ) pushBatch(cs []Completion) {
	if q == nil || len(cs) == 0 || q.closed.Load() {
		return
	}
	for i := 0; i < len(cs); {
		s := q.shardFor(cs[i])
		j := i + 1
		for j < len(cs) && q.shardFor(cs[j]) == s {
			j++
		}
		s.mu.Lock()
		if q.closed.Load() {
			s.mu.Unlock()
			return
		}
		for _, c := range cs[i:j] {
			q.insertLocked(s, c)
		}
		s.mu.Unlock()
		i = j
	}
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// insertLocked adds one completion to shard s (s.mu held): overflow
// check, ring growth, append, size bump.  Notification is the caller's
// job so batches can coalesce it.
func (q *CQ) insertLocked(s *cqShard, c Completion) {
	if int(q.size.Load()) >= q.depth && s.n > 0 {
		// Overflow: the whole queue is at depth — drop this shard's
		// oldest entry, loudly.  (When the full entries all sit in
		// other shards the push transiently overshoots by at most
		// nshards-1 entries rather than dropping someone else's head.)
		s.buf[s.head] = Completion{}
		s.head = (s.head + 1) % len(s.buf)
		s.n--
		q.size.Add(-1)
		dropped := q.dropped.Add(1)
		if q.nic != nil {
			if obs := q.nic.obs.Load(); obs != nil {
				obs.cqOverflows.Inc()
				var uid uint64
				if c.VI != nil {
					uid = c.VI.uid
				}
				obs.trc.Instant(trace.KindCQOverflow, uid, dropped)
			}
		}
	}
	if s.n == len(s.buf) {
		grown := make([]Completion, max(2*len(s.buf), 8))
		for i := 0; i < s.n; i++ {
			grown[i] = s.buf[(s.head+i)%len(s.buf)]
		}
		s.buf, s.head = grown, 0
	}
	s.buf[(s.head+s.n)%len(s.buf)] = c
	s.n++
	q.size.Add(1)
}

// pop removes the oldest completion of one shard.
func (s *cqShard) pop(q *CQ) (Completion, bool) {
	s.mu.Lock()
	if s.n == 0 {
		s.mu.Unlock()
		return Completion{}, false
	}
	c := s.buf[s.head]
	s.buf[s.head] = Completion{}
	s.head = (s.head + 1) % len(s.buf)
	s.n--
	q.size.Add(-1)
	s.mu.Unlock()
	return c, true
}

// Poll removes the oldest completion without blocking.  It is
// consistent with Len: as long as entries remain queued (Len() > 0) a
// full scan that finds nothing rescans instead of reporting empty —
// a racing push may land in a shard behind the scan front, and before
// this loop Poll could return ErrCQEmpty while Len() stayed positive.
// Each empty scan means a racing consumer won an entry, so the loop
// makes system-wide progress and exits when the queue is truly drained.
func (q *CQ) Poll() (Completion, error) {
	for q.size.Load() > 0 {
		start := int(q.rr.Add(1))
		for i := 0; i < len(q.shards); i++ {
			if c, ok := q.shards[(start+i)%len(q.shards)].pop(q); ok {
				return c, nil
			}
		}
	}
	if q.closed.Load() {
		return Completion{}, ErrCQClosed
	}
	return Completion{}, ErrCQEmpty
}

// PollBatch drains up to len(buf) completions into buf and returns how
// many it moved, taking each shard's lock once per scan instead of once
// per entry.  It never blocks: a zero count comes with ErrCQEmpty (or
// ErrCQClosed once the queue is closed and drained).  Like Poll it
// rescans while Len() > 0 so a concurrent push cannot make it report
// empty against a non-empty queue.
func (q *CQ) PollBatch(buf []Completion) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	n := 0
	for n < len(buf) && q.size.Load() > 0 {
		start := int(q.rr.Add(1))
		got := 0
		for i := 0; i < len(q.shards) && n < len(buf); i++ {
			k := q.shards[(start+i)%len(q.shards)].popMany(q, buf[n:])
			got += k
			n += k
		}
		if got == 0 && n > 0 {
			// Racing consumers drained the remainder; ship what we have.
			break
		}
	}
	if n > 0 {
		return n, nil
	}
	if q.closed.Load() {
		return 0, ErrCQClosed
	}
	return 0, ErrCQEmpty
}

// popMany removes up to len(buf) of the shard's oldest completions
// under a single lock acquisition.
func (s *cqShard) popMany(q *CQ, buf []Completion) int {
	s.mu.Lock()
	k := s.n
	if k > len(buf) {
		k = len(buf)
	}
	for i := 0; i < k; i++ {
		buf[i] = s.buf[s.head]
		s.buf[s.head] = Completion{}
		s.head = (s.head + 1) % len(s.buf)
	}
	if k > 0 {
		s.n -= k
		q.size.Add(int64(-k))
	}
	s.mu.Unlock()
	return k
}

// Wait blocks until a completion is available (VipCQWait) or the queue
// is closed.
func (q *CQ) Wait() (Completion, error) {
	return q.WaitCtx(context.Background())
}

// WaitCtx is Wait with cancellation: it returns the context's error as
// soon as ctx is done (deadline or cancel), ErrCQClosed once the queue
// is closed and drained, or the next completion.
func (q *CQ) WaitCtx(ctx context.Context) (Completion, error) {
	for {
		c, err := q.Poll()
		if err == nil {
			// Baton pass: if entries remain, re-arm the wakeup so a
			// second waiter whose notify token we consumed still runs.
			if q.size.Load() > 0 {
				select {
				case q.notify <- struct{}{}:
				default:
				}
			}
			return c, nil
		}
		if errors.Is(err, ErrCQClosed) {
			return Completion{}, ErrCQClosed
		}
		select {
		case <-q.notify:
			q.wakeups.Add(1)
		case <-q.closedCh:
		case <-ctx.Done():
			return Completion{}, ctx.Err()
		}
	}
}

// Wakeups reports how many times a waiter actually parked on the queue
// and was woken by a notify — the wakeups/op numerator of E24.  Entries
// consumed by polling (Poll/PollBatch, or WaitCtx's first try) cost no
// wakeup, which is exactly what completion coalescing buys.
func (q *CQ) Wakeups() uint64 { return q.wakeups.Load() }

// Len reports the number of queued completions.
func (q *CQ) Len() int {
	n := q.size.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Dropped reports how many completions were lost to overflow.
func (q *CQ) Dropped() uint64 { return q.dropped.Load() }

// OverflowErr returns the typed ErrCQOverflow if the queue ever dropped
// a completion, nil otherwise.  Callers that must not lose completions
// (e.g. the CQ multiplexer) check it after draining.
func (q *CQ) OverflowErr() error {
	if q.dropped.Load() > 0 {
		return ErrCQOverflow
	}
	return nil
}

// Close wakes all waiters with ErrCQClosed.  Pending entries can still
// be drained with Poll.
func (q *CQ) Close() {
	if q.closed.CompareAndSwap(false, true) {
		close(q.closedCh)
	}
}
