package via

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/phys"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Fault-injection sites the NIC guards (see package faultinject).
const (
	// SiteDMA guards every TPT-mediated DMA copy (gather, scatter,
	// local DMA).
	SiteDMA = "nic.dma"
	// SiteTPT guards data-path TPT range translations.
	SiteTPT = "tpt.translate"
	// SiteLink guards the wire crossing of sends and RDMA operations.
	SiteLink = "nic.link"
	// SiteCompletion guards the final completion write-back: a fault
	// here models a dropped completion — the data moved but the
	// notification is lost, recovered by the VI error machine.
	SiteCompletion = "nic.completion"
	// SiteLane guards engine-lane dequeue (stalls, lane failures).
	SiteLane = "engine.lane"
)

// Stats counts NIC activity.
type Stats struct {
	Sends          uint64 // send descriptors completed successfully
	Recvs          uint64 // receive descriptors completed successfully
	RDMAWrites     uint64 // RDMA writes completed
	RDMAReads      uint64 // RDMA reads completed
	BytesTX        uint64 // payload bytes transmitted
	BytesRX        uint64 // payload bytes received
	TagViolations  uint64 // protection-tag or attribute failures
	RecvUnderflows uint64 // sends that found no receive descriptor posted
	ImmediateOnly  uint64 // descriptors served from immediate data alone

	// Small-message fast path accounting (E24's scoreboard).
	InlineSends    uint64 // sends whose payload rode inside the descriptor
	Doorbells      uint64 // doorbells actually rung (PIO writes)
	DoorbellsSaved uint64 // posts whose doorbell was coalesced away
	BatchPosts     uint64 // descriptors posted through batch/coalesced doorbells

	// Fault/recovery accounting (the chaos harness's scoreboard).
	Faults             uint64 // data-path faults that hit a VI (injected or organic)
	VIErrors           uint64 // VI transitions into the error state
	DescriptorsFlushed uint64 // descriptors flushed by error/disconnect paths
	Recoveries         uint64 // successful VI Resets out of the error state
	NICResets          uint64 // FaultReset invocations

	// Nopin (RegNoPin) accounting: the pin-free data path's scoreboard.
	IOPageFaults     uint64 // DMA touches on non-present nopin translations
	FaultRetries     uint64 // fault-and-retry resolutions (park → fault-in → resume)
	SpecRetransmits  uint64 // speculative-DMA chunks retransmitted after validation
	RetransmitBytes  uint64 // payload bytes carried by those retransmits
	TPTInvalidations uint64 // notifier downcalls that cleared a present bit
	TPTRepairs       uint64 // host repairs that restored a translation
}

// nicCounters are the live statistics, one lock-free atomic per field so
// the per-descriptor accounting (two or more bumps per send: sender and
// receiver) never serializes concurrent data paths.
type nicCounters struct {
	sends          atomic.Uint64
	recvs          atomic.Uint64
	rdmaWrites     atomic.Uint64
	rdmaReads      atomic.Uint64
	bytesTX        atomic.Uint64
	bytesRX        atomic.Uint64
	tagViolations  atomic.Uint64
	recvUnderflows atomic.Uint64
	immediateOnly  atomic.Uint64

	inlineSends    atomic.Uint64
	doorbells      atomic.Uint64
	doorbellsSaved atomic.Uint64
	batchPosts     atomic.Uint64

	faults      atomic.Uint64
	viErrors    atomic.Uint64
	descFlushed atomic.Uint64
	recoveries  atomic.Uint64
	nicResets   atomic.Uint64

	ioPageFaults    atomic.Uint64
	faultRetries    atomic.Uint64
	specRetransmits atomic.Uint64
	retransmitBytes atomic.Uint64
	tptInvalidates  atomic.Uint64
	tptRepairs      atomic.Uint64
}

// NIC is one simulated VIA network interface controller.
type NIC struct {
	name  string
	mem   *phys.Memory
	meter *simtime.Meter
	tpt   *tpt
	ctr   nicCounters

	// inj is the attached fault injector (nil in production: the data
	// path pays one atomic load + branch per guarded operation).
	inj atomic.Pointer[faultinject.Injector]
	// obs is the attached observer (tracing + metrics); nil in
	// production, same hot-path discipline as inj.
	obs atomic.Pointer[nicObs]
	// nw is the fabric the NIC is attached to (set by Network.Attach),
	// consulted for link partitions.
	nw atomic.Pointer[Network]

	// inlineMax is the accepted inline-payload bound (0..MaxInlineData,
	// default MaxInlineData); dbCoalesce is the doorbell-coalescing
	// window (0 = every post rings; see SetDoorbellCoalesce).  Both are
	// atomic so posts read them lock-free.
	inlineMax  atomic.Int32
	dbCoalesce atomic.Int32

	// ioFaultHandler is the host-side IO-page-fault upcall for nopin
	// regions (installed by the kernel agent); ioFaultPolicy selects
	// fault-and-retry vs speculative recovery.  Both are atomic so the
	// DMA engine reads them lock-free mid-transfer.
	ioFaultHandler atomic.Pointer[IOFaultHandler]
	ioFaultPolicy  atomic.Uint32

	mu         sync.Mutex
	vis        map[int]*VI
	nextVI     int
	eng        *engine
	resetHooks []func()
}

// IOFaultHandler is the host upcall the NIC raises on an IO page fault:
// fault page `page` of region `h` back in and repair the TPT entry
// (via RepairTPTPage).  It runs on the DMA engine's goroutine while the
// faulting descriptor is parked.
type IOFaultHandler func(h MemHandle, page int) error

// IOFaultPolicy selects how the DMA engine recovers from an IO page
// fault on a nopin translation.
type IOFaultPolicy uint32

const (
	// FaultRetry parks the descriptor, asks the host to fault the page
	// back in and repair the TPT entry, then re-translates and resumes —
	// the precise-fault model (Psistakis et al.).
	FaultRetry IOFaultPolicy = iota
	// FaultSpeculative streams the present pages immediately, validates
	// the translation epoch host-side afterwards, and retransmits only
	// the stale chunks — the NP-RDMA model.
	FaultSpeculative
)

// DefaultTPTSlots is the default TPT size (pages registrable at once) —
// 8 Mi of registered memory, a plausible mid-range card of the era.
const DefaultTPTSlots = 2048

// NewNIC creates a NIC attached to the node's physical memory.
func NewNIC(name string, mem *phys.Memory, meter *simtime.Meter, tptSlots int) *NIC {
	if tptSlots <= 0 {
		tptSlots = DefaultTPTSlots
	}
	if meter == nil {
		meter = &simtime.Meter{}
	}
	n := &NIC{
		name:  name,
		mem:   mem,
		meter: meter,
		tpt:   newTPT(tptSlots),
		vis:   make(map[int]*VI),
	}
	n.inlineMax.Store(MaxInlineData)
	return n
}

// InlineMax reports the NIC's accepted inline-payload bound.
func (n *NIC) InlineMax() int { return int(n.inlineMax.Load()) }

// SetInlineMax adjusts the accepted inline-payload bound.  Values are
// clamped to [0, MaxInlineData]; 0 refuses inline sends entirely.
// Negative values restore the default (MaxInlineData).
func (n *NIC) SetInlineMax(max int) {
	switch {
	case max < 0 || max > MaxInlineData:
		max = MaxInlineData
	}
	n.inlineMax.Store(int32(max))
}

// DoorbellCoalesce reports the doorbell-coalescing window (0 or 1 =
// disabled).
func (n *NIC) DoorbellCoalesce() int { return int(n.dbCoalesce.Load()) }

// SetDoorbellCoalesce sets the doorbell-coalescing window: in engine
// mode, up to `window` posts on one VI share a single doorbell ring and
// lane wakeup (see dispatchCoalesced).  Values <= 1 disable coalescing;
// synchronous (engine-off) NICs ignore the setting.  Completion-order
// guarantees are unchanged — only the wakeup count drops.
func (n *NIC) SetDoorbellCoalesce(window int) {
	if window < 0 {
		window = 0
	}
	n.dbCoalesce.Store(int32(window))
}

// ringDoorbell charges one doorbell MMIO and counts it: every post path
// that actually wakes the card goes through here, so Stats.Doorbells is
// the measured doorbells/op denominator of E24.
func (n *NIC) ringDoorbell() {
	n.meter.Charge(n.meter.Costs.Doorbell)
	n.ctr.doorbells.Add(1)
}

// Name returns the NIC's name.
func (n *NIC) Name() string { return n.name }

// Stats returns a snapshot of NIC statistics.  Every counter is read
// atomically and counters only grow, so the snapshot is bounded between
// the NIC's state when the call starts and when it returns; once the
// NIC is quiescent the snapshot is exact.
func (n *NIC) Stats() Stats {
	return Stats{
		Sends:          n.ctr.sends.Load(),
		Recvs:          n.ctr.recvs.Load(),
		RDMAWrites:     n.ctr.rdmaWrites.Load(),
		RDMAReads:      n.ctr.rdmaReads.Load(),
		BytesTX:        n.ctr.bytesTX.Load(),
		BytesRX:        n.ctr.bytesRX.Load(),
		TagViolations:  n.ctr.tagViolations.Load(),
		RecvUnderflows: n.ctr.recvUnderflows.Load(),
		ImmediateOnly:  n.ctr.immediateOnly.Load(),

		InlineSends:    n.ctr.inlineSends.Load(),
		Doorbells:      n.ctr.doorbells.Load(),
		DoorbellsSaved: n.ctr.doorbellsSaved.Load(),
		BatchPosts:     n.ctr.batchPosts.Load(),

		Faults:             n.ctr.faults.Load(),
		VIErrors:           n.ctr.viErrors.Load(),
		DescriptorsFlushed: n.ctr.descFlushed.Load(),
		Recoveries:         n.ctr.recoveries.Load(),
		NICResets:          n.ctr.nicResets.Load(),

		IOPageFaults:     n.ctr.ioPageFaults.Load(),
		FaultRetries:     n.ctr.faultRetries.Load(),
		SpecRetransmits:  n.ctr.specRetransmits.Load(),
		RetransmitBytes:  n.ctr.retransmitBytes.Load(),
		TPTInvalidations: n.ctr.tptInvalidates.Load(),
		TPTRepairs:       n.ctr.tptRepairs.Load(),
	}
}

// SetIOFaultHandler installs (or, with nil, removes) the host upcall
// invoked when DMA faults on a non-present nopin translation.  Without
// a handler, IO page faults surface as StatusIOPageFault completions.
func (n *NIC) SetIOFaultHandler(fn IOFaultHandler) {
	if fn == nil {
		n.ioFaultHandler.Store(nil)
		return
	}
	n.ioFaultHandler.Store(&fn)
}

// SetIOFaultPolicy selects the recovery policy for IO page faults.
func (n *NIC) SetIOFaultPolicy(p IOFaultPolicy) { n.ioFaultPolicy.Store(uint32(p)) }

// IOFaultPolicyInEffect reports the current recovery policy.
func (n *NIC) IOFaultPolicyInEffect() IOFaultPolicy {
	return IOFaultPolicy(n.ioFaultPolicy.Load())
}

// InvalidateTPTPage is the MMU-notifier downcall: the kernel is about to
// evict (swap/unmap/COW-break) a page inside a nopin region, so its TPT
// entry goes non-present.  Reports whether a present entry was cleared.
// Safe to call concurrently with the data path — the edit is a
// copy-on-write snapshot publish, and an in-flight translation that
// loaded the prior snapshot completes against the old frame, the same
// window a real NIC has between the invalidate MMIO and the DMA engine
// draining.
func (n *NIC) InvalidateTPTPage(h MemHandle, page int) bool {
	if !n.tpt.invalidatePage(h, page) {
		return false
	}
	n.meter.Charge(n.meter.Costs.TPTUpdate)
	n.ctr.tptInvalidates.Add(1)
	if obs := n.obs.Load(); obs != nil {
		obs.tptInvalidates.Inc()
		obs.trc.Instant(trace.KindNotifierInvalidate, uint64(h), uint64(page))
	}
	return true
}

// RepairTPTPage restores one page of a nopin region after the host
// faulted it back in: the fresh frame address is entered and the
// present bit set under a new epoch.
func (n *NIC) RepairTPTPage(h MemHandle, page int, pa phys.Addr) error {
	if err := n.tpt.repairPage(h, page, pa); err != nil {
		return err
	}
	n.meter.Charge(n.meter.Costs.TPTUpdate)
	n.ctr.tptRepairs.Add(1)
	if obs := n.obs.Load(); obs != nil {
		obs.tptRepairs.Inc()
		obs.trc.Instant(trace.KindTPTRepair, uint64(h), uint64(page))
	}
	return nil
}

// PresentPages reports how many of a region's TPT entries are currently
// present (all, for pinned regions) — the experiments' probe for how
// much of a nopin region the kernel has evicted.
func (n *NIC) PresentPages(h MemHandle) (present, total int, err error) {
	return n.tpt.presentPages(h)
}

// TPTPageState reports one page's current translation: the frame address
// recorded in the TPT and whether the entry is present (diagnostics and
// the consistency probes; pinned regions are always present).
func (n *NIC) TPTPageState(h MemHandle, page int) (pa phys.Addr, present bool, err error) {
	pa, present, _, err = n.tpt.pageState(h, page)
	return pa, present, err
}

// SetFaultInjector attaches (or, with nil, detaches) a fault injector.
// The NIC's guarded sites are SiteDMA, SiteTPT, SiteLink,
// SiteCompletion and SiteLane.
func (n *NIC) SetFaultInjector(inj *faultinject.Injector) {
	n.inj.Store(inj)
	n.tpt.inj.Store(inj)
}

// OnReset registers a hook invoked after FaultReset has errored every
// connected VI — the invalidation path registration caches subscribe to
// so a NIC reset revalidates cached registrations.
func (n *NIC) OnReset(fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.resetHooks = append(n.resetHooks, fn)
}

// FaultReset simulates a NIC-level fatal fault followed by a driver
// reset: every connected VI transitions to the error state (flushing
// its descriptors), then the reset hooks fire.  Registered memory stays
// in the TPT — it is the owners' job (e.g. a registration cache's
// OnReset hook) to drop and re-register what they cached.
func (n *NIC) FaultReset() {
	n.mu.Lock()
	vis := make([]*VI, 0, len(n.vis))
	for _, v := range n.vis {
		vis = append(vis, v)
	}
	hooks := append([]func(){}, n.resetHooks...)
	n.mu.Unlock()
	n.ctr.nicResets.Add(1)
	n.ctr.faults.Add(1)
	for _, v := range vis {
		if v.State() == VIConnected {
			v.enterError(ErrNICReset)
		}
	}
	for _, fn := range hooks {
		fn()
	}
}

// FreeTPTSlots reports the unused TPT capacity in pages.
func (n *NIC) FreeTPTSlots() int { return n.tpt.freeSlots() }

// Regions reports the number of registered regions.
func (n *NIC) Regions() int { return n.tpt.regionCount() }

// CreateVI creates a virtual interface carrying the given protection tag.
func (n *NIC) CreateVI(tag ProtectionTag) (*VI, error) {
	if tag == InvalidTag {
		return nil, fmt.Errorf("via: cannot create VI with the invalid tag")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	v := &VI{nic: n, id: n.nextVI, uid: viUIDs.Add(1), tag: tag, maxTransfer: DefaultMaxTransferSize}
	n.nextVI++
	n.vis[v.id] = v
	return v, nil
}

// RegisterMemory enters a buffer's physical page list into the TPT and
// returns the handle the DMA engine will use.  pages are the frame
// addresses backing the buffer in order; offset is the buffer start
// within the first page; length is the byte length.
//
// The NIC records the addresses as given — it has no way to notice if
// the kernel's locking scheme later lets the pages move.
func (n *NIC) RegisterMemory(pages []phys.Addr, offset, length int, tag ProtectionTag, attrs MemAttrs) (MemHandle, error) {
	if tag == InvalidTag {
		return NoMemHandle, fmt.Errorf("via: registration with the invalid tag")
	}
	h, err := n.tpt.register(pages, offset, length, tag, attrs)
	if err != nil {
		return NoMemHandle, err
	}
	n.meter.ChargeN(n.meter.Costs.TPTUpdate, len(pages))
	return h, nil
}

// DeregisterMemory invalidates a handle's TPT slots.  Like registration,
// it costs one TPT update per page: every slot of the region must be
// invalidated individually.
func (n *NIC) DeregisterMemory(h MemHandle) error {
	slots, err := n.tpt.deregister(h)
	if err != nil {
		return err
	}
	n.meter.ChargeN(n.meter.Costs.TPTUpdate, slots)
	return nil
}

// RegionLength reports the registered length of a handle.
func (n *NIC) RegionLength(h MemHandle) (int, error) { return n.tpt.regionLength(h) }

// DMAWriteLocal writes data into local registered memory through the
// TPT, as the kernel agent does in step 5 of the locktest experiment
// ("simulating a DMA operation of the NIC").  The write lands at the
// physical addresses recorded at registration time.
func (n *NIC) DMAWriteLocal(h MemHandle, off int, data []byte, tag ProtectionTag) error {
	n.meter.Charge(n.meter.Costs.DMAStartup)
	n.meter.ChargeN(n.meter.Costs.DMAPerByte, len(data))
	return n.tptCopy(h, off, data, tag, true, nil)
}

// DMAReadLocal reads local registered memory through the TPT.
func (n *NIC) DMAReadLocal(h MemHandle, off int, data []byte, tag ProtectionTag) error {
	n.meter.Charge(n.meter.Costs.DMAStartup)
	n.meter.ChargeN(n.meter.Costs.DMAPerByte, len(data))
	return n.tptCopy(h, off, data, tag, false, nil)
}

// tptCopy moves len(buf) bytes between buf and registered memory.  The
// whole page run is resolved into physically contiguous extents under a
// single TPT read-lock acquisition (a 64-page transfer costs one lock
// round-trip, not 64), then copied extent by extent.
//
// On an IO page fault (a nopin translation the kernel has invalidated)
// recovery depends on the installed policy: fault-and-retry parks the
// transfer, raises the fault to the host handler, and re-translates
// once the entry is repaired; speculative hands the whole transfer to
// tptCopySpec.  Without a handler the fault propagates and completes
// the descriptor with StatusIOPageFault.
func (n *NIC) tptCopy(h MemHandle, off int, buf []byte, tag ProtectionTag, write bool, needAttr func(MemAttrs) bool) error {
	if len(buf) == 0 {
		return nil
	}
	if inj := n.inj.Load(); inj != nil {
		if err := inj.Check(faultinject.Op{Site: SiteDMA, Key: uint64(h), N: len(buf)}); err != nil {
			return fmt.Errorf("%w: %w", ErrDMAFault, err)
		}
	}
	err := n.tptCopyOnce(h, off, buf, tag, write, needAttr)
	if err == nil || !errors.Is(err, ErrIOPageFault) {
		// The pinned-region fast path ends here, allocation-free: fault
		// classification (errors.As and its escaping target) lives in the
		// cold recovery function.
		return err
	}
	return n.tptCopyFaulting(h, off, buf, tag, write, needAttr, err)
}

// tptCopyFaulting is the recovery slow path entered when a transfer hit
// a non-present nopin translation.
func (n *NIC) tptCopyFaulting(h MemHandle, off int, buf []byte, tag ProtectionTag, write bool, needAttr func(MemAttrs) bool, err error) error {
	// Generous bound: every page of the transfer may fault once, plus
	// slack for pages re-evicted between repair and resume.  Hitting it
	// means the host is evicting faster than it repairs (livelock), and
	// the descriptor completes with StatusIOPageFault.
	maxRetries := 4*((len(buf)+phys.PageSize-1)/phys.PageSize) + 16
	for attempt := 0; ; attempt++ {
		var pf *IOPageFaultError
		if err == nil || !errors.As(err, &pf) {
			return err
		}
		handler := n.ioFaultHandler.Load()
		if handler == nil {
			n.ctr.ioPageFaults.Add(1)
			return err
		}
		if IOFaultPolicy(n.ioFaultPolicy.Load()) == FaultSpeculative {
			return n.tptCopySpec(h, off, buf, tag, write, needAttr, *handler)
		}
		// Fault-and-retry: the descriptor parks, the NIC raises the
		// fault interrupt (one doorbell-class MMIO), the host faults the
		// page back in and repairs the entry, and the transfer resumes
		// from a fresh translation.
		n.ctr.ioPageFaults.Add(1)
		if obs := n.obs.Load(); obs != nil {
			obs.ioFaults.Inc()
			obs.trc.Instant(trace.KindIOPageFault, uint64(pf.Handle), uint64(pf.Page))
		}
		if attempt >= maxRetries {
			return fmt.Errorf("via: IO fault not resolving after %d retries: %w", attempt, pf)
		}
		n.meter.Charge(n.meter.Costs.Doorbell)
		if herr := (*handler)(pf.Handle, pf.Page); herr != nil {
			return fmt.Errorf("via: IO fault handler: %w (fault: %w)", herr, pf)
		}
		n.ctr.faultRetries.Add(1)
		if obs := n.obs.Load(); obs != nil {
			obs.faultRetries.Inc()
		}
		err = n.tptCopyOnce(h, off, buf, tag, write, needAttr)
	}
}

// tptCopyOnce is a single translate-and-copy pass (the pre-nopin
// tptCopy body).
func (n *NIC) tptCopyOnce(h MemHandle, off int, buf []byte, tag ProtectionTag, write bool, needAttr func(MemAttrs) bool) error {
	ep := extentPool.Get().(*[]extent)
	exts, err := n.tpt.translateRange(h, off, len(buf), tag, needAttr, (*ep)[:0])
	if err != nil {
		extentPool.Put(ep)
		return err
	}
	pos := 0
	for _, e := range exts {
		if write {
			err = n.mem.WritePhys(e.addr, buf[pos:pos+e.n])
		} else {
			err = n.mem.ReadPhys(e.addr, buf[pos:pos+e.n])
		}
		if err != nil {
			break
		}
		pos += e.n
	}
	*ep = exts[:0]
	extentPool.Put(ep)
	return err
}

// tptCopySpec is the NP-RDMA-style speculative path: DMA proceeds
// immediately over every page whose translation is present, then the
// host validates the region's translation epoch; chunks whose page was
// non-present (or whose translation changed mid-flight) are faulted in
// and retransmitted — per-chunk wire and startup costs are charged
// again, which is exactly the cost model NP-RDMA trades against never
// stalling the common case.
func (n *NIC) tptCopySpec(h MemHandle, off int, buf []byte, tag ProtectionTag, write bool, needAttr func(MemAttrs) bool, handler IOFaultHandler) error {
	type piece struct {
		pos    int // byte position within buf
		page   int // region page index
		inPage int // offset within the page
		n      int
		frame  phys.Addr // frame the piece was copied against
	}
	var done []piece  // streamed this pass, pending validation
	var stale []piece // needs fault-in + retransmit
	copyPiece := func(p *piece) error {
		pa := p.frame + phys.Addr(p.inPage)
		if write {
			return n.mem.WritePhys(pa, buf[p.pos:p.pos+p.n])
		}
		return n.mem.ReadPhys(pa, buf[p.pos:p.pos+p.n])
	}

	// Pass 0: stream everything present, collect the holes.
	epoch, err := n.tpt.walkRange(h, off, len(buf), tag, needAttr, func(pos, page int, pa phys.Addr, cn int, present bool) {
		p := piece{pos: pos, page: page, inPage: int(pa & phys.Addr(phys.PageMask)), n: cn,
			frame: pa &^ phys.Addr(phys.PageMask)}
		if present {
			done = append(done, p)
		} else {
			stale = append(stale, p)
		}
	})
	if err != nil {
		return err
	}
	for i := range done {
		if err := copyPiece(&done[i]); err != nil {
			return err
		}
	}
	// Host-side validation: if the region epoch moved while we streamed,
	// any piece whose translation changed joins the stale set.
	if cur, err := n.tpt.regionEpoch(h); err != nil {
		return err
	} else if cur != epoch {
		for _, p := range done {
			frame, present, _, err := n.tpt.pageState(h, p.page)
			if err != nil {
				return err
			}
			if !present || frame != p.frame {
				stale = append(stale, p)
			}
		}
	}

	maxRounds := 4 + 4*((len(buf)+phys.PageSize-1)/phys.PageSize)
	for round := 0; len(stale) > 0; round++ {
		if round >= maxRounds {
			return fmt.Errorf("via: speculative DMA not converging after %d rounds: %w",
				round, &IOPageFaultError{Handle: h, Page: stale[0].page, Epoch: epoch})
		}
		n.ctr.ioPageFaults.Add(uint64(len(stale)))
		if obs := n.obs.Load(); obs != nil {
			for _, p := range stale {
				obs.ioFaults.Inc()
				obs.trc.Instant(trace.KindIOPageFault, uint64(h), uint64(p.page))
			}
		}
		// Host faults every stale page back in and repairs its entry.
		for _, p := range stale {
			if herr := handler(h, p.page); herr != nil {
				return fmt.Errorf("via: IO fault handler: %w", herr)
			}
		}
		// Retransmit round: one startup + wire crossing for the round,
		// per-byte cost for the chunks carried.
		n.meter.Charge(n.meter.Costs.DMAStartup)
		n.meter.Charge(n.meter.Costs.WireLatency)
		var next []piece
		for i := range stale {
			p := stale[i]
			frame, present, _, err := n.tpt.pageState(h, p.page)
			if err != nil {
				return err
			}
			if !present {
				next = append(next, p)
				continue
			}
			p.frame = frame
			if err := copyPiece(&p); err != nil {
				return err
			}
			n.meter.ChargeN(n.meter.Costs.DMAPerByte, p.n)
			n.ctr.specRetransmits.Add(1)
			n.ctr.retransmitBytes.Add(uint64(p.n))
			if obs := n.obs.Load(); obs != nil {
				obs.specRetransmits.Inc()
				obs.trc.Instant(trace.KindSpecRetransmit, uint64(h), uint64(p.n))
			}
			// Validate the retransmit too: a page re-evicted mid-copy
			// goes another round.
			frame2, present2, _, err := n.tpt.pageState(h, p.page)
			if err != nil {
				return err
			}
			if !present2 || frame2 != frame {
				next = append(next, p)
			}
		}
		stale = next
	}
	return nil
}

// process executes one send-queue descriptor synchronously (the DMA
// engine).  Data-path failures complete the descriptor with an error
// status rather than returning an error, matching hardware behaviour.
//
// The state gate here is what flushes lane-resident descriptors: a send
// posted before a disconnect or fault is dequeued later, finds its VI no
// longer connected, and completes with StatusCancelled (clean
// disconnect) or StatusConnectionError (error state) — never lost.
func (n *NIC) process(v *VI, d *Descriptor) {
	v.mu.Lock()
	st, peer := v.state, v.peer
	v.mu.Unlock()
	if st != VIConnected || peer == nil {
		n.ctr.descFlushed.Add(1)
		if st == VIIdle {
			v.completeSend(d, StatusCancelled, 0)
		} else {
			v.completeSend(d, StatusConnectionError, 0)
		}
		return
	}
	switch d.Op {
	case OpSend:
		if d.IsInline() {
			n.processSendInline(v, peer, d)
			return
		}
		n.processSend(v, peer, d)
	case OpRDMAWrite:
		n.processRDMAWrite(v, peer, d)
	case OpRDMARead:
		n.processRDMARead(v, peer, d)
	default:
		v.completeSend(d, StatusProtectionError, 0)
	}
}

// statusForFault maps a fault cause to the typed completion status the
// faulted descriptor reports.
func statusForFault(err error) Status {
	switch {
	case errors.Is(err, ErrTranslationFault):
		return StatusTranslationError
	case errors.Is(err, ErrLinkDown):
		return StatusLinkError
	case errors.Is(err, ErrCompletionDropped):
		return StatusCompletionLost
	case errors.Is(err, ErrIOPageFault):
		return StatusIOPageFault
	case errors.Is(err, ErrDMAFault), errors.Is(err, faultinject.ErrInjected):
		// Unclassified injected errors (e.g. raw phys frame faults)
		// surface as DMA engine faults: that is how the card sees them.
		return StatusDMAError
	default:
		return StatusConnectionError
	}
}

// isInjected reports whether an error came from the fault injector.
func isInjected(err error) bool { return errors.Is(err, faultinject.ErrInjected) }

// isDataFault reports errors that must fault the VI (typed status +
// error state) rather than complete the descriptor as a protection
// error: injected faults and unrecovered IO page faults.
func isDataFault(err error) bool { return isInjected(err) || errors.Is(err, ErrIOPageFault) }

// faultSend is the descriptor half of a data-path fault: the faulted
// send completes with its typed status and the VI (plus peer) enters
// the error state.
func (n *NIC) faultSend(v *VI, d *Descriptor, cause error) {
	n.ctr.faults.Add(1)
	v.completeSend(d, statusForFault(cause), 0)
	v.enterError(cause)
}

// linkCheck validates the wire between two NICs: fabric partitions
// first, then injected link faults.
func (n *NIC) linkCheck(peer *VI) error {
	if nw := n.nw.Load(); nw != nil && !nw.linkUp(n, peer.nic) {
		return fmt.Errorf("%w: %s <-> %s partitioned", ErrLinkDown, n.name, peer.nic.name)
	}
	if inj := n.inj.Load(); inj != nil {
		if err := inj.Check(faultinject.Op{Site: SiteLink, Key: peer.uid}); err != nil {
			return fmt.Errorf("%w: %w", ErrLinkDown, err)
		}
	}
	return nil
}

// completionCheck models the final completion write-back; an injected
// fault here is a dropped completion.
func (n *NIC) completionCheck(v *VI) error {
	if inj := n.inj.Load(); inj != nil {
		if err := inj.Check(faultinject.Op{Site: SiteCompletion, Key: v.uid}); err != nil {
			return fmt.Errorf("%w: %w", ErrCompletionDropped, err)
		}
	}
	return nil
}

// gather collects a descriptor's local segments through the TPT into a
// pooled payload buffer.  The caller must release the returned token
// with putPayload once the payload is no longer referenced.
func (n *NIC) gather(v *VI, d *Descriptor) ([]byte, *payloadBuf, error) {
	total := d.TotalLength()
	if total == 0 {
		return nil, nil, nil
	}
	buf, pb := getPayload(total)
	pos := 0
	for _, s := range d.Segs {
		if err := n.tptCopy(s.Handle, s.Offset, buf[pos:pos+s.Length], v.tag, false, nil); err != nil {
			putPayload(pb)
			return nil, nil, err
		}
		pos += s.Length
	}
	return buf, pb, nil
}

// scatter distributes payload into a descriptor's local segments.
func (n *NIC) scatter(v *VI, d *Descriptor, payload []byte) error {
	pos := 0
	for _, s := range d.Segs {
		if pos >= len(payload) {
			break
		}
		chunk := s.Length
		if chunk > len(payload)-pos {
			chunk = len(payload) - pos
		}
		if err := n.tptCopy(s.Handle, s.Offset, payload[pos:pos+chunk], v.tag, true, nil); err != nil {
			return err
		}
		pos += chunk
	}
	return nil
}

// processSend implements the two-sided send/receive path: gather locally,
// cross the wire, match the peer's receive descriptor, scatter remotely.
func (n *NIC) processSend(v, peer *VI, d *Descriptor) {
	sc := n.stageStart()
	payload, pb, err := n.gather(v, d)
	if err != nil {
		if isDataFault(err) {
			n.faultSend(v, d, err)
			return
		}
		n.ctr.tagViolations.Add(1)
		v.completeSend(d, StatusProtectionError, 0)
		return
	}
	defer putPayload(pb)
	if err := n.linkCheck(peer); err != nil {
		n.faultSend(v, d, err)
		return
	}
	if payload == nil && d.HasImmediate {
		// Immediate-only fast path: the four data bytes ride inside the
		// descriptor, so the second DMA action (the data fetch) is saved
		// entirely — the optimization the VIA spec provides for tiny
		// payloads.
		n.ctr.immediateOnly.Add(1)
	} else {
		n.meter.Charge(n.meter.Costs.DMAStartup)
		n.meter.ChargeN(n.meter.Costs.DMAPerByte, len(payload))
	}
	sc.mark(trace.KindDMA, len(payload))
	n.meter.Charge(n.meter.Costs.WireLatency)
	sc.mark(trace.KindWire, len(payload))

	rd := peer.popRecv()
	if rd == nil {
		// A send with no posted receive breaks a reliable connection.
		peer.nic.ctr.recvUnderflows.Add(1)
		n.ctr.faults.Add(1)
		v.completeSend(d, StatusConnectionError, 0)
		v.enterError(ErrRecvUnderflow)
		return
	}
	if len(payload) > rd.TotalLength() {
		n.ctr.faults.Add(1)
		peer.completeRecv(rd, StatusLengthError, 0)
		v.completeSend(d, StatusLengthError, 0)
		v.enterError(ErrLengthMismatch)
		return
	}
	pn := peer.nic
	// Cut-through delivery: the receiver's DMA engine streams the payload
	// as it arrives, overlapping the sender's transfer, so only the
	// startup cost adds latency (per-byte time was charged at the sender).
	// Immediate-only messages skip the data DMA on this side too.
	if len(payload) > 0 {
		pn.meter.Charge(pn.meter.Costs.DMAStartup)
	}
	if err := pn.scatter(peer, rd, payload); err != nil {
		if isDataFault(err) {
			peer.completeRecv(rd, statusForFault(err), 0)
			n.faultSend(v, d, err)
			return
		}
		pn.ctr.tagViolations.Add(1)
		peer.completeRecv(rd, StatusProtectionError, 0)
		v.completeSend(d, StatusProtectionError, 0)
		return
	}
	sc.mark(trace.KindScatter, len(payload))
	rd.Immediate = d.Immediate
	rd.HasImmediate = d.HasImmediate
	peer.completeRecv(rd, StatusSuccess, len(payload))
	if err := n.completionCheck(v); err != nil {
		// The payload landed and the receiver completed, but the
		// sender's completion was dropped: the error machine flushes
		// the descriptor so it still terminates.  The retransmit a
		// reliability layer then issues is the duplicate its
		// idempotence handling must absorb.
		n.faultSend(v, d, err)
		return
	}
	v.completeSend(d, StatusSuccess, len(payload))
	n.ctr.sends.Add(1)
	n.ctr.bytesTX.Add(uint64(len(payload)))
	pn.ctr.recvs.Add(1)
	pn.ctr.bytesRX.Add(uint64(len(payload)))
}

// processSendInline is the small-message fast path: the payload already
// sits in the descriptor image (PIO-written at post time), so there is
// no TPT translation, no gather DMA, no staging buffer and no scatter
// pass — the engine streams the image to the wire and the receiving NIC
// writes it back into the matched receive descriptor's image, where the
// consumer reads it without touching registered memory.
func (n *NIC) processSendInline(v, peer *VI, d *Descriptor) {
	sc := n.stageStart()
	payload := d.Inline()
	if err := n.linkCheck(peer); err != nil {
		n.faultSend(v, d, err)
		return
	}
	// No DMA startup and no per-byte DMA: the payload was charged as PIO
	// when the descriptor was built.  Only the wire crossing remains.
	n.meter.Charge(n.meter.Costs.WireLatency)
	sc.mark(trace.KindWire, len(payload))

	rd := peer.popRecv()
	if rd == nil {
		peer.nic.ctr.recvUnderflows.Add(1)
		n.ctr.faults.Add(1)
		v.completeSend(d, StatusConnectionError, 0)
		v.enterError(ErrRecvUnderflow)
		return
	}
	// The posted receive must be able to hold the message: its buffer
	// length for a scatter-backed recv, the inline image for a bare one.
	limit := rd.TotalLength()
	if len(rd.Segs) == 0 {
		limit = MaxInlineData
	}
	if len(payload) > limit {
		n.ctr.faults.Add(1)
		peer.completeRecv(rd, StatusLengthError, 0)
		v.completeSend(d, StatusLengthError, 0)
		v.enterError(ErrLengthMismatch)
		return
	}
	rd.setInlineRecv(payload)
	rd.Immediate = d.Immediate
	rd.HasImmediate = d.HasImmediate
	peer.completeRecv(rd, StatusSuccess, len(payload))
	if err := n.completionCheck(v); err != nil {
		n.faultSend(v, d, err)
		return
	}
	v.completeSend(d, StatusSuccess, len(payload))
	n.ctr.sends.Add(1)
	n.ctr.inlineSends.Add(1)
	n.ctr.bytesTX.Add(uint64(len(payload)))
	pn := peer.nic
	pn.ctr.recvs.Add(1)
	pn.ctr.bytesRX.Add(uint64(len(payload)))
}

// processRDMAWrite implements the one-sided write: gather locally, check
// the remote region's tag and write-enable, scatter into remote memory.
// No remote descriptor is consumed.
func (n *NIC) processRDMAWrite(v, peer *VI, d *Descriptor) {
	sc := n.stageStart()
	payload, pb, err := n.gather(v, d)
	if err != nil {
		if isDataFault(err) {
			n.faultSend(v, d, err)
			return
		}
		n.ctr.tagViolations.Add(1)
		v.completeSend(d, StatusProtectionError, 0)
		return
	}
	defer putPayload(pb)
	if err := n.linkCheck(peer); err != nil {
		n.faultSend(v, d, err)
		return
	}
	n.meter.Charge(n.meter.Costs.DMAStartup)
	n.meter.ChargeN(n.meter.Costs.DMAPerByte, len(payload))
	sc.mark(trace.KindDMA, len(payload))
	n.meter.Charge(n.meter.Costs.WireLatency)
	sc.mark(trace.KindWire, len(payload))

	pn := peer.nic
	err = pn.tptCopy(d.Remote.Handle, d.Remote.Offset, payload, peer.tag, true,
		func(a MemAttrs) bool { return a.EnableRDMAWrite })
	if err != nil {
		if isDataFault(err) {
			n.faultSend(v, d, err)
			return
		}
		pn.ctr.tagViolations.Add(1)
		v.completeSend(d, StatusProtectionError, 0)
		return
	}
	sc.mark(trace.KindScatter, len(payload))
	if err := n.completionCheck(v); err != nil {
		n.faultSend(v, d, err)
		return
	}
	v.completeSend(d, StatusSuccess, len(payload))
	n.ctr.rdmaWrites.Add(1)
	n.ctr.bytesTX.Add(uint64(len(payload)))
	pn.ctr.bytesRX.Add(uint64(len(payload)))
}

// processRDMARead implements the one-sided read: fetch remote registered
// memory (tag + read-enable checked at the remote NIC) and scatter it
// into the local segments.
func (n *NIC) processRDMARead(v, peer *VI, d *Descriptor) {
	sc := n.stageStart()
	if err := n.linkCheck(peer); err != nil {
		n.faultSend(v, d, err)
		return
	}
	total := d.TotalLength()
	buf, pb := getPayload(total)
	defer putPayload(pb)
	n.meter.Charge(n.meter.Costs.WireLatency) // request
	pn := peer.nic
	err := pn.tptCopy(d.Remote.Handle, d.Remote.Offset, buf, peer.tag, false,
		func(a MemAttrs) bool { return a.EnableRDMARead })
	if err != nil {
		if isDataFault(err) {
			n.faultSend(v, d, err)
			return
		}
		pn.ctr.tagViolations.Add(1)
		v.completeSend(d, StatusProtectionError, 0)
		return
	}
	pn.meter.Charge(pn.meter.Costs.DMAStartup)
	pn.meter.ChargeN(pn.meter.Costs.DMAPerByte, total)
	sc.mark(trace.KindDMA, total)
	n.meter.Charge(n.meter.Costs.WireLatency) // response
	sc.mark(trace.KindWire, total)
	if err := n.scatter(v, d, buf); err != nil {
		if isDataFault(err) {
			n.faultSend(v, d, err)
			return
		}
		n.ctr.tagViolations.Add(1)
		v.completeSend(d, StatusProtectionError, 0)
		return
	}
	sc.mark(trace.KindScatter, total)
	if err := n.completionCheck(v); err != nil {
		n.faultSend(v, d, err)
		return
	}
	v.completeSend(d, StatusSuccess, total)
	n.ctr.rdmaReads.Add(1)
	n.ctr.bytesRX.Add(uint64(total))
	pn.ctr.bytesTX.Add(uint64(total))
}
