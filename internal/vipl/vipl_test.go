package vipl

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kagent"
	"repro/internal/mm"
	"repro/internal/phys"
	"repro/internal/proc"
	"repro/internal/simtime"
	"repro/internal/via"
)

type rig struct {
	nw           *via.Network
	nicHA, nicHB *Nic
	procA, procB *proc.Process
}

func newRig(t *testing.T) *rig {
	t.Helper()
	meter := simtime.NewMeter()
	cfg := mm.Config{RAMPages: 256, SwapPages: 512, ClockBatch: 64, SwapBatch: 16}
	kA := mm.NewKernel(cfg, meter)
	kB := mm.NewKernel(cfg, meter)
	nw := via.NewNetwork()
	nA := via.NewNIC("a", kA.Phys(), meter, 128)
	nB := via.NewNIC("b", kB.Phys(), meter, 128)
	if err := nw.Attach(nA); err != nil {
		t.Fatal(err)
	}
	if err := nw.Attach(nB); err != nil {
		t.Fatal(err)
	}
	pA := proc.New(kA, "pa", false)
	pB := proc.New(kB, "pb", false)
	return &rig{
		nw:    nw,
		nicHA: OpenNic(kagent.New(kA, nA, core.MustNew(core.StrategyKiobuf)), pA),
		nicHB: OpenNic(kagent.New(kB, nB, core.MustNew(core.StrategyKiobuf)), pB),
		procA: pA,
		procB: pB,
	}
}

func TestOpenNicAssignsTag(t *testing.T) {
	r := newRig(t)
	if r.nicHA.Tag() == via.InvalidTag {
		t.Fatal("invalid tag assigned")
	}
	if r.nicHA.Process() != r.procA {
		t.Fatal("process accessor broken")
	}
}

func TestRegisterWholeBuffer(t *testing.T) {
	r := newRig(t)
	b, err := r.procA.Malloc(3 * phys.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := r.nicHA.RegisterMem(b, via.MemAttrs{})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Length() != b.Bytes || reg.Addr() != b.Addr {
		t.Fatalf("region %d@%#x", reg.Length(), uint64(reg.Addr()))
	}
	ok, total, err := reg.Consistent()
	if err != nil || ok != total {
		t.Fatalf("consistency %d/%d, %v", ok, total, err)
	}
	if err := r.nicHA.DeregisterMem(reg); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterRangeValidation(t *testing.T) {
	r := newRig(t)
	b, _ := r.procA.Malloc(2 * phys.PageSize)
	if _, err := r.nicHA.RegisterMemRange(b, -1, 100, via.MemAttrs{}); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := r.nicHA.RegisterMemRange(b, 0, 0, via.MemAttrs{}); err == nil {
		t.Fatal("zero length accepted")
	}
	if _, err := r.nicHA.RegisterMemRange(b, phys.PageSize, 2*phys.PageSize, via.MemAttrs{}); err == nil {
		t.Fatal("range past buffer accepted")
	}
}

func TestSendRecvHelpers(t *testing.T) {
	r := newRig(t)
	viA, err := r.nicHA.CreateVi()
	if err != nil {
		t.Fatal(err)
	}
	viB, err := r.nicHB.CreateVi()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.nw.Connect(viA, viB); err != nil {
		t.Fatal(err)
	}
	src, _ := r.procA.Malloc(phys.PageSize)
	dst, _ := r.procB.Malloc(phys.PageSize)
	if err := src.Write(0, []byte("vipl helpers")); err != nil {
		t.Fatal(err)
	}
	regA, err := r.nicHA.RegisterMem(src, via.MemAttrs{})
	if err != nil {
		t.Fatal(err)
	}
	regB, err := r.nicHB.RegisterMem(dst, via.MemAttrs{})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := r.nicHB.PostRecv(viB, regB, 0, phys.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := r.nicHA.PostSend(viA, regA, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	if st := sd.Wait(); st != via.StatusSuccess {
		t.Fatalf("send %v", st)
	}
	if st := rd.Wait(); st != via.StatusSuccess {
		t.Fatalf("recv %v", st)
	}
	got := make([]byte, 12)
	if err := dst.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "vipl helpers" {
		t.Fatalf("got %q", got)
	}
}

func TestRDMAHelpers(t *testing.T) {
	r := newRig(t)
	viA, _ := r.nicHA.CreateVi()
	viB, _ := r.nicHB.CreateVi()
	if err := r.nw.Connect(viA, viB); err != nil {
		t.Fatal(err)
	}
	src, _ := r.procA.Malloc(phys.PageSize)
	dst, _ := r.procB.Malloc(phys.PageSize)
	if err := src.Write(0, []byte("rdma")); err != nil {
		t.Fatal(err)
	}
	regA, _ := r.nicHA.RegisterMem(src, via.MemAttrs{EnableRDMARead: true})
	regB, _ := r.nicHB.RegisterMem(dst, via.MemAttrs{EnableRDMAWrite: true})

	// Write A → B.
	d, err := r.nicHA.PostRDMAWrite(viA, regA, 0, 4, regB.Handle(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if st := d.Wait(); st != via.StatusSuccess {
		t.Fatalf("rdma write %v", st)
	}
	got := make([]byte, 4)
	if err := dst.Read(10, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "rdma" {
		t.Fatalf("got %q", got)
	}

	// Read back B → A into offset 100.
	d2, err := r.nicHB.PostRDMARead(viB, regB, 10, 4, regA.Handle(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := d2.Wait(); st != via.StatusSuccess {
		t.Fatalf("rdma read %v", st)
	}
}
