package trace

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/simtime"
)

func newTestTracer(capacity int) (*Tracer, *simtime.Meter) {
	m := simtime.NewMeter()
	return New(m, capacity), m
}

func TestEmitAndSnapshot(t *testing.T) {
	trc, m := newTestTracer(16)
	m.Charge(100)
	span := trc.Begin(KindRegister, 7, 4096)
	if span == 0 {
		t.Fatal("Begin returned span 0")
	}
	m.Charge(50)
	trc.Instant(KindPin, 1, 0)
	m.Charge(50)
	trc.End(span, KindRegister, 1, 42)

	evs := trc.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Phase != PhaseBegin || evs[0].Kind != KindRegister || evs[0].Sim != 100 {
		t.Fatalf("begin event wrong: %+v", evs[0])
	}
	if evs[1].Phase != PhaseInstant || evs[1].Sim != 150 {
		t.Fatalf("instant event wrong: %+v", evs[1])
	}
	if evs[2].Phase != PhaseEnd || evs[2].Span != span || evs[2].Arg2 != 42 {
		t.Fatalf("end event wrong: %+v", evs[2])
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot not seq-ordered: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	trc, _ := newTestTracer(8)
	for i := 0; i < 20; i++ {
		trc.Instant(KindTranslate, uint64(i), 0)
	}
	if got := trc.Emitted(); got != 20 {
		t.Fatalf("Emitted = %d, want 20", got)
	}
	if got := trc.Dropped(); got != 12 {
		t.Fatalf("Dropped = %d, want 12", got)
	}
	evs := trc.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("snapshot kept %d events, want 8", len(evs))
	}
	// The retained events are exactly the newest 8, in order.
	for i, ev := range evs {
		if want := uint64(12 + i + 1); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestCapacityRoundsUpToPowerOfTwo(t *testing.T) {
	trc, _ := newTestTracer(100)
	if got := trc.Capacity(); got != 128 {
		t.Fatalf("Capacity = %d, want 128", got)
	}
	trc, _ = newTestTracer(0)
	if got := trc.Capacity(); got != DefaultCapacity {
		t.Fatalf("default Capacity = %d, want %d", got, DefaultCapacity)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var trc *Tracer
	span := trc.Begin(KindRegister, 1, 2)
	if span != 0 {
		t.Fatalf("nil Begin returned %d, want 0", span)
	}
	trc.End(span, KindRegister, 1, 0) // and span 0 end on a live tracer below
	trc.Instant(KindPin, 0, 0)
	trc.Counter(KindLaneDepth, 3, 1)
	trc.Reset()
	if trc.Emitted() != 0 || trc.Dropped() != 0 || trc.Capacity() != 0 {
		t.Fatal("nil tracer reported nonzero state")
	}
	if trc.Snapshot() != nil {
		t.Fatal("nil tracer snapshot not nil")
	}

	live, _ := newTestTracer(8)
	live.End(0, KindRegister, 1, 0) // ending span 0 must be a no-op
	if got := live.Emitted(); got != 0 {
		t.Fatalf("End(0) emitted %d events, want 0", got)
	}
}

func TestSpanIDsUnique(t *testing.T) {
	trc, _ := newTestTracer(8)
	seen := map[SpanID]bool{}
	for i := 0; i < 100; i++ {
		s := trc.Begin(KindDescSend, 0, 0)
		if seen[s] {
			t.Fatalf("span id %d repeated", s)
		}
		seen[s] = true
	}
}

func TestReset(t *testing.T) {
	trc, _ := newTestTracer(8)
	trc.Instant(KindDMA, 1, 2)
	trc.Reset()
	if got := trc.Snapshot(); len(got) != 0 {
		t.Fatalf("snapshot after Reset has %d events", len(got))
	}
	// Emission resumes after a reset.
	trc.Instant(KindDMA, 3, 4)
	if got := trc.Snapshot(); len(got) != 1 {
		t.Fatalf("snapshot after re-emit has %d events, want 1", len(got))
	}
}

func TestConcurrentEmitAndSnapshot(t *testing.T) {
	trc, _ := newTestTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				span := trc.Begin(KindDescSend, uint64(g), uint64(i))
				trc.Instant(KindDMA, uint64(i), 0)
				trc.End(span, KindDescSend, 1, uint64(i))
			}
		}(g)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				evs := trc.Snapshot()
				for j := 1; j < len(evs); j++ {
					if evs[j].Seq <= evs[j-1].Seq {
						t.Error("snapshot out of order")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got, want := trc.Emitted(), uint64(8*500*3); got != want {
		t.Fatalf("Emitted = %d, want %d", got, want)
	}
}

func TestKindStringsExhaustive(t *testing.T) {
	for k := KindNone; k < numKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("Kind %d has no name", uint16(k))
		}
		if c := k.Category(); k != KindNone && c == "other" {
			t.Errorf("Kind %v has no category", k)
		}
	}
	// Out-of-range kinds fall back to the numeric form.
	if got := numKinds.String(); !strings.HasPrefix(got, "kind(") {
		t.Errorf("sentinel String = %q", got)
	}
}

func TestPhaseStringsExhaustive(t *testing.T) {
	for p := PhaseBegin; p < numPhases; p++ {
		if s := p.String(); s == "" || s == "phase(?)" {
			t.Errorf("Phase %d has no name", uint8(p))
		}
	}
	if got := numPhases.String(); got != "phase(?)" {
		t.Errorf("sentinel Phase String = %q", got)
	}
}
