// Package leakcheck detects goroutine leaks: a workload snapshots the
// goroutine count before it starts and verifies the count settles back
// to the baseline when it finishes.  The chaos harness uses the plain
// Verify form to assert that fault injection and recovery never strand
// an engine lane, a blocked sender or a waiting receiver; tests use the
// Check helper.
//
// The comparison is count-based with a settling window, so it tolerates
// runtime-internal goroutines coming and going but catches anything a
// workload leaves behind.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// DefaultTimeout is how long Verify waits for goroutines to wind down.
const DefaultTimeout = 2 * time.Second

// Snapshot records the current goroutine count as a baseline.
func Snapshot() int { return runtime.NumGoroutine() }

// Verify waits up to timeout (<= 0 selects DefaultTimeout) for the
// goroutine count to return to the baseline.  On failure it returns an
// error listing the live goroutines, one summary line each.
func Verify(baseline int, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	deadline := time.Now().Add(timeout)
	for {
		if runtime.NumGoroutine() <= baseline {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	n := runtime.NumGoroutine()
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	return fmt.Errorf("leakcheck: %d goroutines alive, baseline %d:\n%s",
		n, baseline, condense(string(buf)))
}

// Check arms a leak check for the rest of the test: the baseline is
// taken now and verified in test cleanup.
func Check(tb testing.TB) {
	tb.Helper()
	base := Snapshot()
	tb.Cleanup(func() {
		if err := Verify(base, DefaultTimeout); err != nil {
			tb.Error(err)
		}
	})
}

// condense reduces a full runtime.Stack dump to one line per goroutine:
// its header plus its topmost frame.
func condense(stacks string) string {
	var b strings.Builder
	for _, g := range strings.Split(strings.TrimSpace(stacks), "\n\n") {
		lines := strings.SplitN(g, "\n", 3)
		b.WriteString(strings.TrimSuffix(lines[0], ":"))
		if len(lines) > 1 {
			b.WriteString(" at ")
			b.WriteString(strings.TrimSpace(lines[1]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
