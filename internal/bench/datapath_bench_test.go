package bench

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	"repro/internal/msg"
	"repro/internal/phys"
	"repro/internal/simtime"
	"repro/internal/via"
)

// dpRig is a two-NIC fabric with pre-connected VI pairs and registered
// buffers, one pair per prospective worker, so the benchmarks measure
// the descriptor data path and not setup.
type dpRig struct {
	meter      *simtime.Meter
	nicA, nicB *via.NIC
	visA, visB []*via.VI
	hA, hB     []via.MemHandle
}

// newDPRig builds nVIs connected VI pairs, each side owning a registered
// buffer of the given page count.
func newDPRig(tb testing.TB, nVIs, pages int) *dpRig {
	tb.Helper()
	frames := nVIs*pages + 64
	r := &dpRig{meter: simtime.NewMeter()}
	memA, memB := phys.New(frames), phys.New(frames)
	r.nicA = via.NewNIC("dpA", memA, r.meter, frames)
	r.nicB = via.NewNIC("dpB", memB, r.meter, frames)
	net := via.NewNetwork()
	if err := net.Attach(r.nicA); err != nil {
		tb.Fatal(err)
	}
	if err := net.Attach(r.nicB); err != nil {
		tb.Fatal(err)
	}
	reg := func(mem *phys.Memory, nic *via.NIC, tag via.ProtectionTag) via.MemHandle {
		pp := make([]phys.Addr, pages)
		for i := range pp {
			pfn, err := mem.AllocFrame()
			if err != nil {
				tb.Fatal(err)
			}
			pp[i] = pfn.Addr()
		}
		h, err := nic.RegisterMemory(pp, 0, pages*phys.PageSize, tag, via.MemAttrs{})
		if err != nil {
			tb.Fatal(err)
		}
		return h
	}
	for i := 0; i < nVIs; i++ {
		tag := via.ProtectionTag(i + 1)
		va, err := r.nicA.CreateVI(tag)
		if err != nil {
			tb.Fatal(err)
		}
		vb, err := r.nicB.CreateVI(tag)
		if err != nil {
			tb.Fatal(err)
		}
		if err := net.Connect(va, vb); err != nil {
			tb.Fatal(err)
		}
		r.visA = append(r.visA, va)
		r.visB = append(r.visB, vb)
		r.hA = append(r.hA, reg(memA, r.nicA, tag))
		r.hB = append(r.hB, reg(memB, r.nicB, tag))
	}
	return r
}

// BenchmarkDataPath is the regression guard for the synchronous
// descriptor fast path: every worker drives send/recv rounds over its
// own VI pair on one shared NIC pair, so the TPT translation, the NIC
// statistics and the payload buffering are the contended state.  Run
// with -cpu 1,2,4,8 to see scaling; steady state must not allocate for
// pooled payload sizes.
func BenchmarkDataPath(b *testing.B) {
	const maxWorkers = 64
	for _, pages := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("%dKiB", pages*phys.PageSize>>10), func(b *testing.B) {
			r := newDPRig(b, maxWorkers, pages)
			payload := pages * phys.PageSize
			var next atomic.Int64
			simStart := r.meter.Now()
			b.ReportAllocs()
			b.SetBytes(int64(payload))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := int(next.Add(1)-1) % maxWorkers
				viA, viB := r.visA[id], r.visB[id]
				hA, hB := r.hA[id], r.hB[id]
				var rd, sd *via.Descriptor
				for pb.Next() {
					if rd == nil {
						rd = via.NewDescriptor(via.OpRecv, via.Segment{Handle: hB, Offset: 0, Length: payload})
						sd = via.NewDescriptor(via.OpSend, via.Segment{Handle: hA, Offset: 0, Length: payload})
					} else {
						rd.Reset()
						sd.Reset()
					}
					if err := viB.PostRecv(rd); err != nil {
						b.Fatal(err)
					}
					if err := viA.PostSend(sd); err != nil {
						b.Fatal(err)
					}
					if sd.Status != via.StatusSuccess {
						b.Fatalf("send status %v", sd.Status)
					}
				}
			})
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric((r.meter.Now()-simStart).Micros()/float64(b.N), "sim-µs/op")
			}
		})
	}
}

// BenchmarkRendezvous is the regression guard for the pipelined
// rendezvous control path: repeated warm-cache 256 KiB zero-copy
// send/recv rounds, so after the first round every chunk registration is
// a cache hit and the measured work is the grant/fin handshake, the
// chunk loop and the descriptor path — the walltime overhead the
// pipeline adds per message.
func BenchmarkRendezvous(b *testing.B) {
	const size = 256 * 1024
	c, err := cluster.New(cluster.Config{
		Nodes:    2,
		Kernel:   benchKernelConfig(),
		TPTSlots: 4096,
	})
	if err != nil {
		b.Fatal(err)
	}
	ea, eb, err := c.EndpointPair(0, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	src, err := ea.Process().Malloc(size)
	if err != nil {
		b.Fatal(err)
	}
	dst, err := eb.Process().Malloc(size)
	if err != nil {
		b.Fatal(err)
	}
	if err := src.FillPattern(0x5a); err != nil {
		b.Fatal(err)
	}
	if err := dst.FillPattern(0x00); err != nil {
		b.Fatal(err)
	}
	round := func() error {
		errc := make(chan error, 1)
		go func() {
			_, err := eb.Recv(dst)
			errc <- err
		}()
		if _, err := ea.Send(src, msg.ZeroCopy); err != nil {
			return err
		}
		return <-errc
	}
	if err := round(); err != nil { // warm: fault pages in, fill regcache
		b.Fatal(err)
	}
	simStart := c.Meter.Now()
	b.ReportAllocs()
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := round(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric((c.Meter.Now()-simStart).Micros()/float64(b.N), "sim-µs/op")
	}
}

// BenchmarkMultiVIFanout measures the asynchronous engine: many VIs fan
// descriptors onto one NIC's engine concurrently and wait for
// completion, so independent connections only go as fast as the engine
// lets them process in parallel.
func BenchmarkMultiVIFanout(b *testing.B) {
	const maxWorkers = 64
	r := newDPRig(b, maxWorkers, 1)
	payload := phys.PageSize
	r.nicA.StartEngine()
	defer r.nicA.StopEngine()
	var next atomic.Int64
	simStart := r.meter.Now()
	b.ReportAllocs()
	b.SetBytes(int64(payload))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(next.Add(1)-1) % maxWorkers
		viA, viB := r.visA[id], r.visB[id]
		hA, hB := r.hA[id], r.hB[id]
		var rd, sd *via.Descriptor
		for pb.Next() {
			if rd == nil {
				rd = via.NewDescriptor(via.OpRecv, via.Segment{Handle: hB, Offset: 0, Length: payload})
				sd = via.NewDescriptor(via.OpSend, via.Segment{Handle: hA, Offset: 0, Length: payload})
			} else {
				rd.Reset()
				sd.Reset()
			}
			if err := viB.PostRecv(rd); err != nil {
				b.Fatal(err)
			}
			if err := viA.PostSend(sd); err != nil {
				b.Fatal(err)
			}
			if st := sd.Wait(); st != via.StatusSuccess {
				b.Fatalf("send status %v", st)
			}
		}
	})
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric((r.meter.Now()-simStart).Micros()/float64(b.N), "sim-µs/op")
	}
}
