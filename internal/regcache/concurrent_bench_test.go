package regcache

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/kagent"
	"repro/internal/mm"
	"repro/internal/phys"
	"repro/internal/proc"
	"repro/internal/simtime"
	"repro/internal/via"
	"repro/internal/vipl"
)

// benchRig is newRig without the *testing.T plumbing so benchmarks can
// build nodes too.
func benchRig(tptSlots, ramPages int) (*proc.Process, *vipl.Nic) {
	meter := simtime.NewMeter()
	k := mm.NewKernel(mm.Config{RAMPages: ramPages, SwapPages: 2 * ramPages, ClockBatch: 64, SwapBatch: 16}, meter)
	n := via.NewNIC("bench", k.Phys(), meter, tptSlots)
	agent := kagent.New(k, n, core.MustNew(core.StrategyKiobuf))
	p := proc.New(k, "bench", false)
	return p, vipl.OpenNic(agent, p)
}

// BenchmarkConcurrentMixed is the regression guard for the concurrent
// Acquire/Release fast path: every worker hammers a shared hot set
// (cache hits) and cycles a private buffer set through a capped cache
// (misses + evictions).  Run with -cpu 1,2,4,8,16 to see scaling.
func BenchmarkConcurrentMixed(b *testing.B) {
	const (
		hotBufs     = 64
		privPerProc = 4
	)
	p, nic := benchRig(16384, 16384)
	cache := New(nic, hotBufs+16)

	hot := make([]*proc.Buffer, hotBufs)
	for i := range hot {
		var err error
		if hot[i], err = p.Malloc(phys.PageSize); err != nil {
			b.Fatal(err)
		}
	}
	var nextWorker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(nextWorker.Add(1))
		priv := make([]*proc.Buffer, privPerProc)
		for i := range priv {
			var err error
			if priv[i], err = p.Malloc(phys.PageSize); err != nil {
				b.Fatal(err)
			}
		}
		i := 0
		for pb.Next() {
			var buf *proc.Buffer
			if i%16 == 15 {
				buf = priv[i%privPerProc]
			} else {
				buf = hot[(i*7+id)%hotBufs]
			}
			reg, err := cache.Acquire(buf, 0, buf.Bytes, via.MemAttrs{}, ClassUser)
			if err != nil {
				b.Fatal(err)
			}
			if err := cache.Release(reg); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
