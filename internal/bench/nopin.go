package bench

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/phys"
	"repro/internal/pressure"
	"repro/internal/report"
	"repro/internal/via"
)

// E20 (NoPin): pinned vs pin-free registration under a swap storm.
// The pinned baseline nails its pages down, so the storm flows around
// the region; both nopin modes leave the pages evictable and recover
// through IO page faults — fault-and-retry by parking the transfer,
// speculative by streaming the present pages and retransmitting stale
// chunks after epoch validation.  Every mode must deliver 100%
// payload-verified DMA; the table shows what each pays for it and how
// much memory the nopin modes hand back to the kernel.

const (
	nopinPages = 64
	nopinSeed  = 0x5a
)

// nopinNode builds a one-node rig small enough that pressure.Level(1.5)
// genuinely storms the region's pages out.
func nopinNode() (*cluster.Cluster, *cluster.Node, error) {
	cfg := benchKernelConfig()
	cfg.RAMPages = 1024
	cfg.SwapPages = 4096
	c, err := cluster.New(cluster.Config{
		Nodes:    1,
		Strategy: core.StrategyKiobuf,
		Kernel:   cfg,
		TPTSlots: 1024,
	})
	if err != nil {
		return nil, nil, err
	}
	return c, c.Nodes[0], nil
}

// nopinMode is one row of the E20 comparison.
type nopinMode struct {
	name   string
	attrs  via.MemAttrs
	policy via.IOFaultPolicy
}

func nopinModes() []nopinMode {
	return []nopinMode{
		{name: "pinned", attrs: via.MemAttrs{}},
		{name: "nopin/fault-retry", attrs: via.MemAttrs{NoPin: true}, policy: via.FaultRetry},
		{name: "nopin/speculative", attrs: via.MemAttrs{NoPin: true}, policy: via.FaultSpeculative},
	}
}

// NoPin regenerates E20: the pin-free registration comparison.
func NoPin(w io.Writer) error {
	t := report.Table{
		Title: "E20: pinned vs pin-free (RegNoPin) registration under swap storm",
		Note: "64-page region, allocator touches 1.5x RAM mid-registration; dma-us is the post-storm DMA phase in simulated time; " +
			"pinned-pages is memory withheld from reclaim; every mode must verify 100% of the payload",
		Headers: []string{
			"mode", "pinned-pages", "storm-evictions", "region-evicted",
			"dma-us", "MB/s", "io-faults", "retry-stalls", "retransmits", "retrans-KiB", "verified",
		},
	}
	for _, mode := range nopinModes() {
		row, err := nopinRow(mode)
		if err != nil {
			return fmt.Errorf("%s: %w", mode.name, err)
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
	return nil
}

func nopinRow(mode nopinMode) ([]any, error) {
	c, node, err := nopinNode()
	if err != nil {
		return nil, err
	}
	node.NIC.SetIOFaultPolicy(mode.policy)
	p := node.NewProcess("app", false)
	buf, err := p.Malloc(nopinPages * phys.PageSize)
	if err != nil {
		return nil, err
	}
	if err := buf.FillPattern(nopinSeed); err != nil {
		return nil, err
	}
	// Snapshot the expected payload now; the markers are applied to it
	// once the DMA phase writes them.
	want := make([]byte, buf.Bytes)
	if err := buf.Read(0, want); err != nil {
		return nil, err
	}
	tag := via.ProtectionTag(p.ID())
	reg, err := node.Agent.RegisterMem(p.AS(), buf.Addr, buf.Bytes, tag, mode.attrs)
	if err != nil {
		return nil, err
	}

	// How much memory the registration withholds from reclaim.
	pinned := 0
	for i := 0; i < node.Kernel.Phys().NumFrames(); i++ {
		pinned += int(node.Kernel.Phys().Pins(phys.PFN(i)))
	}

	// The swap storm.
	swapsBefore := node.Kernel.Stats().SwapOuts
	if _, err := pressure.Level(node.Kernel, 1.5); err != nil {
		return nil, err
	}
	storm := node.Kernel.Stats().SwapOuts - swapsBefore
	present, total, err := node.NIC.PresentPages(reg.Handle)
	if err != nil {
		return nil, err
	}
	regionEvicted := total - present

	// Post-storm DMA phase: write a per-page marker into the region,
	// then read the whole region back — both through the TPT, both
	// recovering from whatever the storm evicted.
	statsBefore := node.NIC.Stats()
	sw := c.Meter.Start()
	for pg := 0; pg < nopinPages; pg++ {
		mark := []byte(fmt.Sprintf("PG%04d", pg))
		if err := node.NIC.DMAWriteLocal(reg.Handle, pg*phys.PageSize, mark, tag); err != nil {
			return nil, fmt.Errorf("DMA write page %d: %w", pg, err)
		}
	}
	got := make([]byte, buf.Bytes)
	if err := node.NIC.DMAReadLocal(reg.Handle, 0, got, tag); err != nil {
		return nil, fmt.Errorf("DMA read: %w", err)
	}
	dma := sw.Elapsed()
	stats := node.NIC.Stats()

	// Payload verification: DMA view and CPU view must both equal the
	// original pattern with the markers applied.
	for pg := 0; pg < nopinPages; pg++ {
		copy(want[pg*phys.PageSize:], fmt.Sprintf("PG%04d", pg))
	}
	verified := bytes.Equal(got, want)
	cpu := make([]byte, buf.Bytes)
	if err := buf.Read(0, cpu); err != nil {
		return nil, err
	}
	verified = verified && bytes.Equal(cpu, want)
	if !verified {
		return nil, fmt.Errorf("payload verification failed (mode %s)", mode.name)
	}

	if err := node.Agent.DeregisterMem(reg); err != nil {
		return nil, err
	}

	mbps := 0.0
	if dma.Micros() > 0 {
		bytesMoved := float64(nopinPages*6 + buf.Bytes)
		mbps = bytesMoved / dma.Micros() // B/µs == MB/s
	}
	return []any{
		mode.name,
		pinned,
		int(storm),
		regionEvicted,
		fmt.Sprintf("%.1f", dma.Micros()),
		fmt.Sprintf("%.0f", mbps),
		int(stats.IOPageFaults - statsBefore.IOPageFaults),
		int(stats.FaultRetries - statsBefore.FaultRetries),
		int(stats.SpecRetransmits - statsBefore.SpecRetransmits),
		fmt.Sprintf("%.1f", float64(stats.RetransmitBytes-statsBefore.RetransmitBytes)/1024),
		report.Bool(true),
	}, nil
}
