package via

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/trace"
)

// The NIC's default descriptor processing is synchronous: PostSend runs
// the DMA engine inline and the descriptor is complete on return, which
// keeps single-threaded tests deterministic.  Real hardware is
// asynchronous — the doorbell enqueues work and the engine runs it in
// the background while the CPU continues (the whole point of the E11
// analysis).  StartEngine switches a NIC to that mode.
//
// The engine is multi-lane: a fixed set of worker goroutines, each
// owning one bounded FIFO queue.  A VI is hashed to a lane by its id,
// so one VI's descriptors are always processed by the same single
// consumer in posting order — the VIA ordering rule — while
// independent VIs proceed in parallel across lanes.

// engine is the background descriptor processor.
type engine struct {
	lanes []engineLane
	wg    sync.WaitGroup
}

// engineLane is one worker's queue.  The mutex orders enqueues against
// StopEngine's close so a post racing a stop can never write to a
// closed channel.
type engineLane struct {
	mu     sync.Mutex
	closed bool
	ch     chan engineItem
}

// engineItem is one unit of lane work, in one of three shapes:
//   - single:  d != nil — process one descriptor;
//   - batch:   batch != nil — process the descriptors in order (one
//     enqueue, one wakeup for the whole PostSendBatch);
//   - token:   d == nil && batch == nil — a coalesced doorbell; the
//     worker drains the VI's dbPending list (see dispatchCoalesced).
type engineItem struct {
	vi    *VI
	d     *Descriptor
	batch []*Descriptor
}

// engineQueueDepth bounds the posted-but-unprocessed descriptor count
// per lane (the send-queue depth of the card).  A post finding its
// lane full completes the descriptor with StatusQueueOverflow instead
// of blocking the doorbell.
const engineQueueDepth = 256

// maxEngineLanes caps the lane count; beyond the core count extra lanes
// only add scheduling overhead.
const maxEngineLanes = 64

// StartEngine switches the NIC to asynchronous descriptor processing
// with one lane per available CPU: PostSend returns as soon as the
// descriptor is enqueued, and descriptors of one VI are processed in
// posting order.  Callers learn about completion through
// Descriptor.Wait/Done or a CQ.
func (n *NIC) StartEngine() { n.StartEngineLanes(0) }

// StartEngineLanes starts the engine with an explicit lane count
// (values <= 0 select one lane per available CPU).  It is a no-op if
// the engine is already running.
func (n *NIC) StartEngineLanes(lanes int) {
	if lanes <= 0 {
		lanes = runtime.GOMAXPROCS(0)
	}
	if lanes > maxEngineLanes {
		lanes = maxEngineLanes
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.eng != nil {
		return
	}
	e := &engine{lanes: make([]engineLane, lanes)}
	for i := range e.lanes {
		e.lanes[i].ch = make(chan engineItem, engineQueueDepth)
	}
	n.eng = e
	e.wg.Add(lanes)
	for i := range e.lanes {
		go func(lane int, ln *engineLane) {
			defer e.wg.Done()
			for item := range ln.ch {
				if obs := n.obs.Load(); obs != nil {
					obs.trc.Instant(trace.KindLaneDequeue, uint64(lane), uint64(len(ln.ch)))
				}
				// SiteLane models the lane hardware itself: stall rules
				// delay the dequeue (a slow lane), error rules fault the
				// descriptor as a DMA engine failure.  For a batch or a
				// coalesced token the fault hits the first descriptor; the
				// rest of the batch drains through process, which flushes
				// them with StatusConnectionError off the now-errored VI —
				// every descriptor still reaches exactly one terminal
				// status.
				var ferr error
				if inj := n.inj.Load(); inj != nil {
					if err := inj.Check(faultinject.Op{Site: SiteLane, Key: item.vi.uid}); err != nil {
						ferr = fmt.Errorf("%w: %w", ErrDMAFault, err)
					}
				}
				switch {
				case item.d != nil:
					if ferr != nil {
						n.faultSend(item.vi, item.d, ferr)
						continue
					}
					n.process(item.vi, item.d)
				case item.batch != nil:
					for i, d := range item.batch {
						if i == 0 && ferr != nil {
							n.faultSend(item.vi, d, ferr)
							continue
						}
						n.process(item.vi, d)
					}
				default: // coalesced doorbell token
					if ferr != nil {
						if d0 := item.vi.takeOnePending(); d0 != nil {
							n.faultSend(item.vi, d0, ferr)
						}
					}
					n.drainPending(item.vi)
				}
			}
		}(i, &e.lanes[i])
	}
}

// StopEngine drains the lane queues, stops the worker goroutines and
// returns the NIC to synchronous processing.  Posts racing the stop
// are processed inline after the drain (see dispatch), so no
// descriptor is ever lost.
func (n *NIC) StopEngine() {
	n.mu.Lock()
	e := n.eng
	n.eng = nil
	n.mu.Unlock()
	if e == nil {
		return
	}
	for i := range e.lanes {
		ln := &e.lanes[i]
		ln.mu.Lock()
		ln.closed = true
		close(ln.ch)
		ln.mu.Unlock()
	}
	e.wg.Wait()
}

// EngineRunning reports whether asynchronous processing is active.
func (n *NIC) EngineRunning() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.eng != nil
}

// EngineLanes reports the number of engine lanes (0 when synchronous).
func (n *NIC) EngineLanes() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.eng == nil {
		return 0
	}
	return len(n.eng.lanes)
}

// enqResult is the outcome of a lane enqueue attempt.
type enqResult uint8

const (
	// enqOK means the item is on the lane.
	enqOK enqResult = iota
	// enqFull means the lane queue is full; the caller must complete
	// the work with StatusQueueOverflow.
	enqFull
	// enqClosed means a concurrent StopEngine closed the lane; the
	// caller must run the work itself after the drain.
	enqClosed
)

// enqueueItem places one item on the VI's lane.  obs is the caller's
// loaded observer (nil when detached).
func (e *engine) enqueueItem(obs *nicObs, v *VI, item engineItem) enqResult {
	lane := v.id % len(e.lanes)
	ln := &e.lanes[lane]
	ln.mu.Lock()
	if ln.closed {
		ln.mu.Unlock()
		return enqClosed
	}
	select {
	case ln.ch <- item:
		if obs != nil {
			depth := len(ln.ch)
			obs.laneDepth.Observe(int64(depth))
			obs.trc.Instant(trace.KindLaneEnqueue, uint64(lane), uint64(depth))
		}
		ln.mu.Unlock()
		return enqOK
	default:
	}
	ln.mu.Unlock()
	return enqFull
}

// dispatch routes a posted descriptor either inline (synchronous mode)
// or onto its VI's engine lane.  The doorbell is charged here — not in
// PostSend — so the coalesced path can elide it.
func (n *NIC) dispatch(v *VI, d *Descriptor) {
	n.mu.Lock()
	e := n.eng
	n.mu.Unlock()
	if e == nil {
		n.ringDoorbell()
		n.process(v, d)
		return
	}
	if w := int(n.dbCoalesce.Load()); w > 1 {
		n.dispatchCoalesced(e, v, d, w)
		return
	}
	n.ringDoorbell()
	switch e.enqueueItem(n.obs.Load(), v, engineItem{vi: v, d: d}) {
	case enqFull:
		v.completeSend(d, StatusQueueOverflow, 0)
	case enqClosed:
		// Lost the race with StopEngine.  Wait for the lanes to finish
		// draining so this VI's earlier descriptors complete first, then
		// process inline — per-VI order holds and the completion is
		// never lost.
		e.wg.Wait()
		n.process(v, d)
	}
}

// dispatchBatch routes a PostSendBatch: one doorbell, one lane item for
// the whole batch.  A full lane overflows the entire batch (the send
// queue could not take it); a closed lane processes it inline after the
// drain, like dispatch.
func (n *NIC) dispatchBatch(v *VI, ds []*Descriptor) {
	n.mu.Lock()
	e := n.eng
	n.mu.Unlock()
	n.ringDoorbell()
	n.ctr.batchPosts.Add(1)
	if len(ds) > 1 {
		n.ctr.doorbellsSaved.Add(uint64(len(ds) - 1))
	}
	if e == nil {
		for _, d := range ds {
			n.process(v, d)
		}
		return
	}
	switch e.enqueueItem(n.obs.Load(), v, engineItem{vi: v, batch: ds}) {
	case enqFull:
		v.completeSendBatch(ds, StatusQueueOverflow)
	case enqClosed:
		e.wg.Wait()
		for _, d := range ds {
			n.process(v, d)
		}
	}
}

// dispatchCoalesced is the opt-in doorbell-coalescing path
// (SetDoorbellCoalesce, engine mode only).  Every post appends its
// descriptor to the VI's dbPending list; only the post that finds the
// list disarmed rings the doorbell and enqueues a *token* on the VI's
// lane.  The lane worker drains the whole list on dequeue, so a burst
// of posts costs one doorbell charge and one lane wakeup.  Per-VI
// order holds because the token rides the same single-consumer lane
// the VI's descriptors would.  A long burst still pays: every window-th
// coalesced post re-rings the doorbell (charge only — the token is
// already in flight), modeling the bounded hardware doorbell window.
func (n *NIC) dispatchCoalesced(e *engine, v *VI, d *Descriptor, window int) {
	v.mu.Lock()
	v.dbPending = append(v.dbPending, d)
	armed := v.dbArmed
	pend := len(v.dbPending)
	if !armed {
		v.dbArmed = true
	}
	v.mu.Unlock()
	if !armed {
		n.ringDoorbell()
		switch e.enqueueItem(n.obs.Load(), v, engineItem{vi: v}) {
		case enqFull:
			n.flushPendingOverflow(v)
		case enqClosed:
			e.wg.Wait()
			n.drainPending(v)
		}
		return
	}
	if pend%window == 0 {
		n.ringDoorbell()
	} else {
		n.ctr.doorbellsSaved.Add(1)
	}
}

// drainPending is the token's work: process the VI's coalesced posts
// until the list is empty, then disarm.  Only the token's owner (the
// lane worker, or the arming post after a StopEngine race) runs it, so
// there is exactly one drainer per armed window.  The drained batch's
// backing array is recycled through dbFree so steady-state coalescing
// never allocates.
func (n *NIC) drainPending(v *VI) {
	for {
		v.mu.Lock()
		batch := v.dbPending
		if len(batch) == 0 {
			v.dbArmed = false
			v.mu.Unlock()
			return
		}
		v.dbPending = v.dbFree[:0]
		v.dbFree = nil
		v.mu.Unlock()
		for _, d := range batch {
			n.process(v, d)
		}
		clear(batch)
		v.mu.Lock()
		if v.dbFree == nil {
			v.dbFree = batch[:0]
		}
		v.mu.Unlock()
	}
}

// flushPendingOverflow completes every coalesced pending descriptor
// with StatusQueueOverflow — the token found the lane full, so the
// send queue could not take the window — then disarms.
func (n *NIC) flushPendingOverflow(v *VI) {
	for {
		v.mu.Lock()
		batch := v.dbPending
		if len(batch) == 0 {
			v.dbArmed = false
			v.mu.Unlock()
			return
		}
		v.dbPending = nil
		v.mu.Unlock()
		v.completeSendBatch(batch, StatusQueueOverflow)
	}
}

// takeOnePending pops the head of the VI's coalesced list (nil when
// empty) so a lane fault on a token has a descriptor to pin the DMA
// fault on, mirroring the single-descriptor fault path.
func (v *VI) takeOnePending() *Descriptor {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.dbPending) == 0 {
		return nil
	}
	d := v.dbPending[0]
	n := copy(v.dbPending, v.dbPending[1:])
	v.dbPending[n] = nil
	v.dbPending = v.dbPending[:n]
	return d
}
