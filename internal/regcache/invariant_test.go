package regcache

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/phys"
	"repro/internal/proc"
	"repro/internal/trace"
	"repro/internal/via"
	"repro/internal/vipl"
)

// TestInvariantConcurrentAcquireRelease hammers one capacity-bounded
// cache with random concurrent Acquire/Release/Flush traffic and then
// checks the structural invariants the cache must uphold:
//
//   - no Acquire or Release ever fails,
//   - refcounts never go negative (every release is accepted, and after
//     the drain every surviving entry is idle),
//   - nothing leaks: after a final Flush the cache is empty and the
//     kernel agent holds zero registrations,
//   - every NIC registration the agent performed is paired with exactly
//     one deregistration, proven from the trace-event stream.
func TestInvariantConcurrentAcquireRelease(t *testing.T) {
	const (
		workers    = 8
		iters      = 300
		buffers    = 6
		bufPages   = 4
		maxRegions = 4 // small on purpose: force constant eviction
	)
	r := newRig(t, 1024)
	// The event pairing proof needs the complete stream: size the ring
	// for every register/deregister span the run can possibly emit.
	trc := trace.New(r.k.Meter(), 1<<17)
	reg := metrics.NewRegistry()
	r.nic.Agent().AttachObs(trc, reg)
	c := New(r.nic, maxRegions)
	c.AttachObs(trc, reg)

	bufs := make([]*proc.Buffer, buffers)
	for i := range bufs {
		bufs[i] = r.buf(t, bufPages)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			held := make([]*vipl.MemRegion, 0, 4)
			for i := 0; i < iters; i++ {
				switch {
				case len(held) > 0 && rng.Intn(3) == 0:
					// Release a random held region.
					j := rng.Intn(len(held))
					if err := c.Release(held[j]); err != nil {
						t.Errorf("Release: %v", err)
						return
					}
					held = append(held[:j], held[j+1:]...)
				case rng.Intn(40) == 0:
					// Trim everything idle.
					if _, err := c.Flush(); err != nil {
						t.Errorf("Flush: %v", err)
						return
					}
				default:
					b := bufs[rng.Intn(buffers)]
					off := rng.Intn(bufPages) * phys.PageSize
					length := (rng.Intn(bufPages-off/phys.PageSize) + 1) * phys.PageSize
					class := ClassUser
					if rng.Intn(4) == 0 {
						class = ClassPersistent
					}
					mr, err := c.Acquire(b, off, length, via.MemAttrs{}, class)
					if err != nil {
						t.Errorf("Acquire(off=%d len=%d): %v", off, length, err)
						return
					}
					held = append(held, mr)
				}
			}
			for _, mr := range held {
				if err := c.Release(mr); err != nil {
					t.Errorf("drain Release: %v", err)
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// After the drain every surviving entry must be idle (refs == 0):
	// a negative or stuck refcount would show up here.
	c.mu.Lock()
	for _, e := range c.regions {
		if e.refs != 0 {
			t.Errorf("entry %v still has %d refs after drain", e.key, e.refs)
		}
	}
	c.mu.Unlock()

	// Nothing may leak: a full flush empties the cache and the agent.
	if _, err := c.Flush(); err != nil {
		t.Fatalf("final Flush: %v", err)
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("cache holds %d entries after final flush", got)
	}
	if got := r.nic.Agent().Registrations(); got != 0 {
		t.Fatalf("agent still holds %d registrations after final flush", got)
	}

	// Every registration deregistered exactly once, per the trace.
	if d := trc.Dropped(); d != 0 {
		t.Fatalf("trace ring dropped %d events; pairing proof needs the full stream", d)
	}
	live := map[uint64]int{} // handle -> net registrations
	registers := 0
	for _, ev := range trc.Snapshot() {
		if ev.Phase != trace.PhaseEnd || ev.Arg1 != 1 {
			continue // only successful completions carry a handle
		}
		switch ev.Kind {
		case trace.KindRegister:
			live[ev.Arg2]++
			registers++
			if live[ev.Arg2] > 1 {
				t.Fatalf("handle %d registered twice without a deregister", ev.Arg2)
			}
		case trace.KindDeregister:
			live[ev.Arg2]--
			if live[ev.Arg2] < 0 {
				t.Fatalf("handle %d deregistered more often than registered", ev.Arg2)
			}
		}
	}
	if registers == 0 {
		t.Fatal("trace recorded no registrations; harness is not exercising the path")
	}
	for h, n := range live {
		if n != 0 {
			t.Errorf("handle %d has %d unmatched registrations", h, n)
		}
	}
	// The workload must have hit all three cache paths.
	s := c.Stats()
	if s.Hits == 0 || s.Misses == 0 || s.Evictions == 0 {
		t.Fatalf("workload too tame: %+v", s)
	}
}
