package bench

// The E17 "stripe" class: multi-rail failover chaos.  Each round builds
// a fresh two-node, two-rail cluster with a striped channel and severs
// rails mid-send from a concurrent cutter (seeded jitter, so the cut
// lands at a different point in the chunk schedule every round):
//
//   - even rounds cut ONE rail: every striped send must still deliver a
//     verified payload — the failover is transparent, the only visible
//     effect is the shrunken rotation;
//   - odd rounds cut BOTH rails: the send in flight (or the next one)
//     must fail with the typed msg.ErrAllRailsDown — never a hang,
//     never a corruption;
//   - every round ends with the full recovery protocol — heal the
//     links, ResetRailPair every rail, AbandonAborted the corpses —
//     and a drain that proves both rails carry traffic again.
//
// The scoreboard: ok = verified deliveries, loud = typed all-rails-down
// failures, injected = severed rails.  Zero corrupt frames, zero leaked
// reassemblies and zero goroutine leaks are hard requirements, and a
// soak in which no send ever failed over (or no odd round ever failed
// loudly) is a dead schedule.

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/leakcheck"
	"repro/internal/mm"
	"repro/internal/msg"
	"repro/internal/proc"
)

const (
	chaosStripeRounds = 6
	chaosStripeRails  = 2
	chaosStripeMsgs   = 6        // sends per round; the cutter arms inside message 2
	chaosStripeChunk  = 8 * 1024 // 12 chunks + an odd tail per message
	chaosStripeSize   = 12*chaosStripeChunk + 37
	chaosStripeDrain  = 3 // post-recovery sends, proving both rails rejoined
)

// chaosStripeSend pushes one payload through the stripe and claims it.
// loudErr is the typed every-rail-dead failure (acceptable under
// chaos); fatalErr is a harness invariant violation — a corruption, a
// short delivery, or a receive failure after a successful send.
func chaosStripeSend(tx *msg.StripeSender, rx *msg.StripeReceiver, src, dst *proc.Buffer, seed byte) (loudErr, fatalErr error) {
	if err := src.FillPattern(seed); err != nil {
		return nil, err
	}
	n, err := tx.Send(src)
	if err != nil {
		if errors.Is(err, msg.ErrAllRailsDown) {
			return err, nil
		}
		return nil, fmt.Errorf("untyped send failure: %w", err)
	}
	if n != src.Bytes {
		return nil, fmt.Errorf("short send: %d of %d", n, src.Bytes)
	}
	m, err := rx.Recv(dst)
	if err != nil {
		return nil, fmt.Errorf("recv after successful send: %w (rx stats %+v)", err, rx.Stats())
	}
	if m != n {
		return nil, fmt.Errorf("delivered %d of %d bytes", m, n)
	}
	bad, err := dst.VerifyPattern(seed)
	if err != nil {
		return nil, err
	}
	if len(bad) != 0 {
		return nil, fmt.Errorf("silent corruption — %d bad pages %v", len(bad), bad)
	}
	return nil, nil
}

// chaosStripeRound soaks one fresh striped pair: cut, contract check,
// recovery, drain.  Scoreboard counts accumulate into res.
func chaosStripeRound(c *cluster.Cluster, tx *msg.StripeSender, rx *msg.StripeReceiver,
	round int, rng *rand.Rand, res *chaosResult) error {
	pa := c.Nodes[0].NewProcess("stripe-chaos-a", false)
	pb := c.Nodes[1].NewProcess("stripe-chaos-b", false)
	src, err := pa.Malloc(chaosStripeSize)
	if err != nil {
		return err
	}
	dst, err := pb.Malloc(chaosStripeSize)
	if err != nil {
		return err
	}
	defer func() {
		_ = pa.Free(src)
		_ = pb.Free(dst)
	}()

	both := round%2 == 1
	killRail := (round / 2) % chaosStripeRails
	for m := 0; m < chaosStripeMsgs; m++ {
		var cut sync.WaitGroup
		if m == 2 {
			// Land the cut mid-send: the sender is synchronous, so a
			// jittered concurrent sever falls between two chunk posts
			// (or just after the send — then the NEXT send trips over
			// the dead rail at chunk 0; both paths are the contract).
			delay := time.Duration(10+rng.Intn(120)) * time.Microsecond
			cut.Add(1)
			go func() {
				defer cut.Done()
				time.Sleep(delay)
				c.SeverRail(0, 1, killRail)
				if both {
					c.SeverRail(0, 1, 1-killRail)
				}
			}()
		}
		loudErr, fatalErr := chaosStripeSend(tx, rx, src, dst, byte(16*round+m+1))
		if m == 2 {
			cut.Wait()
			res.injected++
			if both {
				res.injected++
			}
		}
		if fatalErr != nil {
			return fmt.Errorf("message %d: %w", m, fatalErr)
		}
		if loudErr != nil {
			if !both {
				return fmt.Errorf("message %d: single-rail cut escalated to %w", m, loudErr)
			}
			res.loud++
			break // the fabric is fully dead; go recover
		}
		res.ok++
	}

	// Recovery: heal every link, Reset every rail pair (dead rails
	// rejoin the rotation, healthy ones get a clean rebuild), hand the
	// aborted-transfer record to the receiver.
	for r := 0; r < chaosStripeRails; r++ {
		c.HealRail(0, 1, r)
	}
	for r := 0; r < chaosStripeRails; r++ {
		if err := msg.ResetRailPair(tx, rx, r); err != nil {
			return fmt.Errorf("reset rail %d: %w", r, err)
		}
	}
	msg.AbandonAborted(tx, rx)
	if live := tx.LiveRails(); live != chaosStripeRails {
		return fmt.Errorf("live rails = %d after recovery, want %d", live, chaosStripeRails)
	}

	// Drain: clean sends must flow and BOTH rails must carry bytes —
	// a rail that silently failed to rejoin would leave its counter flat.
	before := tx.Stats().RailBytes
	for d := 0; d < chaosStripeDrain; d++ {
		loudErr, fatalErr := chaosStripeSend(tx, rx, src, dst, byte(199+16*round+d))
		if loudErr != nil || fatalErr != nil {
			return fmt.Errorf("post-recovery drain %d: %w", d, errors.Join(loudErr, fatalErr))
		}
		res.ok++
	}
	after := tx.Stats().RailBytes
	for r := range after {
		if after[r] == before[r] {
			return fmt.Errorf("rail %d carried no traffic after recovery", r)
		}
	}
	return nil
}

// chaosStripe is the multi-rail fault class: rail deaths under striped
// sends, transparent failover on even rounds, typed whole-fabric
// failure on odd rounds, explicit-Reset recovery after both.
func chaosStripe() (chaosResult, error) {
	res := chaosResult{class: "stripe"}
	base := leakcheck.Snapshot()
	rng := rand.New(rand.NewSource(chaosSeed))
	var failovers uint64
	for round := 0; round < chaosStripeRounds; round++ {
		c := cluster.MustNew(cluster.Config{
			Nodes:    2,
			Rails:    chaosStripeRails,
			Strategy: core.StrategyKiobuf,
			Kernel:   mm.Config{RAMPages: 4096, SwapPages: 8192, ClockBatch: 128, SwapBatch: 32},
			TPTSlots: 2048,
		})
		tx, rx, err := c.StripedPair(0, 1, chaosStripeRails, 0, msg.StripeOptions{
			Chunk:       chaosStripeChunk,
			RecvTimeout: 10 * time.Second,
		})
		if err != nil {
			return res, err
		}
		err = chaosWatchdog(fmt.Sprintf("stripe round %d", round), func() error {
			return chaosStripeRound(c, tx, rx, round, rng, &res)
		})
		st := tx.Stats()
		failovers += st.Failovers
		rst := rx.Stats()
		if err == nil && rst.Corrupt != 0 {
			err = fmt.Errorf("round %d: %d corrupt frames reached reassembly", round, rst.Corrupt)
		}
		if err == nil && rst.Pending != 0 {
			err = fmt.Errorf("round %d: %d incomplete reassemblies leaked", round, rst.Pending)
		}
		for _, n := range c.Nodes {
			for _, rl := range n.Rails {
				res.nic = sumStats(res.nic, rl.NIC.Stats())
			}
		}
		rx.Close()
		tx.Close()
		if err != nil {
			return res, fmt.Errorf("stripe round %d: %w", round, err)
		}
	}
	if failovers == 0 || res.loud == 0 {
		return res, fmt.Errorf("chaos stripe: the fault schedule is dead (failovers=%d, typed failures=%d)",
			failovers, res.loud)
	}
	if err := leakcheck.Verify(base, 5*time.Second); err != nil {
		return res, fmt.Errorf("class %q: %w", res.class, err)
	}
	return res, nil
}
