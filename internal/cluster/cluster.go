// Package cluster assembles complete simulated nodes — kernel, NIC,
// kernel agent, fabric — so harness binaries, examples and benchmarks
// build test beds in a few lines.
package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kagent"
	"repro/internal/mm"
	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/simtime"
	"repro/internal/via"
	"repro/internal/vipl"
)

// Node is one simulated machine.
type Node struct {
	// Name is the node's fabric name.
	Name string
	// Kernel is the node's MM subsystem.
	Kernel *mm.Kernel
	// NIC is the node's VIA interface.
	NIC *via.NIC
	// Agent is the node's VI kernel agent.
	Agent *kagent.Agent
}

// NewProcess starts a process on the node.
func (n *Node) NewProcess(name string, root bool) *proc.Process {
	return proc.New(n.Kernel, name, root)
}

// OpenNic opens the node's NIC for a process.
func (n *Node) OpenNic(p *proc.Process) *vipl.Nic {
	return vipl.OpenNic(n.Agent, p)
}

// Cluster is a fabric of nodes sharing one virtual clock.
type Cluster struct {
	// Meter is the shared virtual clock and cost model.
	Meter *simtime.Meter
	// Network is the VIA fabric.
	Network *via.Network
	// Nodes are the machines, in creation order.
	Nodes []*Node
}

// Config parameterizes cluster construction.
type Config struct {
	// Nodes is the machine count (default 2).
	Nodes int
	// Strategy selects the kernel agents' locking mechanism
	// (default kiobuf).
	Strategy core.Strategy
	// Kernel configures each node's kernel (zero = mm defaults).
	Kernel mm.Config
	// TPTSlots sizes each NIC's table (0 = via default).
	TPTSlots int
}

// New builds a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	if cfg.Strategy == "" {
		cfg.Strategy = core.StrategyKiobuf
	}
	locker, err := core.New(cfg.Strategy)
	if err != nil {
		return nil, err
	}
	c := &Cluster{Meter: simtime.NewMeter(), Network: via.NewNetwork()}
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("node%d", i)
		k := mm.NewKernel(cfg.Kernel, c.Meter)
		nic := via.NewNIC(name, k.Phys(), c.Meter, cfg.TPTSlots)
		if err := c.Network.Attach(nic); err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, &Node{
			Name:   name,
			Kernel: k,
			NIC:    nic,
			Agent:  kagent.New(k, nic, locker),
		})
	}
	return c, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// EndpointPair creates processes on two nodes, wraps them in message
// endpoints and pairs them.  cacheRegions bounds each endpoint's
// registration cache (0 = unbounded).  An optional msg.Options value
// configures both endpoints.
func (c *Cluster) EndpointPair(i, j, cacheRegions int, opts ...msg.Options) (*msg.Endpoint, *msg.Endpoint, error) {
	if i < 0 || j < 0 || i >= len(c.Nodes) || j >= len(c.Nodes) {
		return nil, nil, fmt.Errorf("cluster: node index out of range")
	}
	pa := c.Nodes[i].NewProcess("sender", false)
	pb := c.Nodes[j].NewProcess("receiver", false)
	ea, err := msg.NewEndpoint("ep-a", c.Nodes[i].OpenNic(pa), c.Meter, cacheRegions, opts...)
	if err != nil {
		return nil, nil, err
	}
	eb, err := msg.NewEndpoint("ep-b", c.Nodes[j].OpenNic(pb), c.Meter, cacheRegions, opts...)
	if err != nil {
		return nil, nil, err
	}
	if err := msg.Pair(c.Network, ea, eb); err != nil {
		return nil, nil, err
	}
	return ea, eb, nil
}
