// Package proc wraps an mm.AddressSpace into a convenient simulated user
// process: typed memory access, malloc-style buffer management, and the
// helpers experiments need (fill/verify patterns, page touching).
package proc

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/mm"
	"repro/internal/pgtable"
	"repro/internal/phys"
	"repro/internal/vma"
)

// Process is one simulated user process.
type Process struct {
	kernel *mm.Kernel
	as     *mm.AddressSpace
}

// New creates a process on the node.  root grants the full capability
// set (needed by the plain-mlock path).
func New(k *mm.Kernel, name string, root bool) *Process {
	return &Process{kernel: k, as: k.CreateProcess(name, root)}
}

// AS exposes the underlying address space for kernel-agent calls.
func (p *Process) AS() *mm.AddressSpace { return p.as }

// Kernel exposes the node's kernel.
func (p *Process) Kernel() *mm.Kernel { return p.kernel }

// ID returns the process id.
func (p *Process) ID() int { return p.as.ID() }

func (p *Process) String() string { return p.as.String() }

// Exit destroys the process and releases all its memory.
func (p *Process) Exit() error { return p.kernel.DestroyProcess(p.as) }

// Buffer is an allocated range of the process's address space.
type Buffer struct {
	proc *Process
	// Addr is the buffer's base virtual address (page aligned).
	Addr pgtable.VAddr
	// Bytes is the buffer length.
	Bytes int
}

// Pages reports the buffer length in pages.
func (b *Buffer) Pages() int { return (b.Bytes + phys.PageSize - 1) / phys.PageSize }

func (b *Buffer) String() string {
	return fmt.Sprintf("%v buf[%#x,+%d)", b.proc, uint64(b.Addr), b.Bytes)
}

// Malloc maps an anonymous read-write buffer of the given size, rounded
// up to whole pages.  Pages materialize lazily on first touch, exactly
// like user-space malloc over mmap.
func (p *Process) Malloc(size int) (*Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("proc: malloc(%d)", size)
	}
	npages := (size + phys.PageSize - 1) / phys.PageSize
	addr, err := p.kernel.MMap(p.as, npages, vma.Read|vma.Write)
	if err != nil {
		return nil, err
	}
	return &Buffer{proc: p, Addr: addr, Bytes: size}, nil
}

// Free unmaps the buffer.
func (p *Process) Free(b *Buffer) error {
	return p.kernel.Munmap(p.as, b.Addr, b.Pages())
}

// Write stores data at offset off within the buffer.
func (b *Buffer) Write(off int, data []byte) error {
	if off < 0 || off+len(data) > b.Bytes {
		return fmt.Errorf("proc: write [%d,+%d) outside %v", off, len(data), b)
	}
	return b.proc.kernel.CopyToUser(b.proc.as, b.Addr+pgtable.VAddr(off), data)
}

// Read loads len(dst) bytes from offset off within the buffer.
func (b *Buffer) Read(off int, dst []byte) error {
	if off < 0 || off+len(dst) > b.Bytes {
		return fmt.Errorf("proc: read [%d,+%d) outside %v", off, len(dst), b)
	}
	return b.proc.kernel.CopyFromUser(b.proc.as, b.Addr+pgtable.VAddr(off), dst)
}

// WriteUint32 stores a little-endian uint32 at offset off.
func (b *Buffer) WriteUint32(off int, v uint32) error {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return b.Write(off, tmp[:])
}

// ReadUint32 loads a little-endian uint32 from offset off.
func (b *Buffer) ReadUint32(off int) (uint32, error) {
	var tmp [4]byte
	if err := b.Read(off, tmp[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(tmp[:]), nil
}

// FillPattern writes a deterministic per-page pattern over the whole
// buffer (step 1 of the locktest experiment: "fills it with data" so
// every virtual page maps a distinct physical page).
func (b *Buffer) FillPattern(seed byte) error {
	page := make([]byte, phys.PageSize)
	for pg := 0; pg < b.Pages(); pg++ {
		n := b.Bytes - pg*phys.PageSize
		if n > phys.PageSize {
			n = phys.PageSize
		}
		pattern(page[:n], seed, pg)
		if err := b.Write(pg*phys.PageSize, page[:n]); err != nil {
			return err
		}
	}
	return nil
}

// VerifyPattern checks the buffer against FillPattern's output and
// returns the indices of pages whose contents diverge.
func (b *Buffer) VerifyPattern(seed byte) (badPages []int, err error) {
	got := make([]byte, phys.PageSize)
	want := make([]byte, phys.PageSize)
	for pg := 0; pg < b.Pages(); pg++ {
		n := b.Bytes - pg*phys.PageSize
		if n > phys.PageSize {
			n = phys.PageSize
		}
		if err := b.Read(pg*phys.PageSize, got[:n]); err != nil {
			return badPages, err
		}
		pattern(want[:n], seed, pg)
		if !bytes.Equal(got[:n], want[:n]) {
			badPages = append(badPages, pg)
		}
	}
	return badPages, nil
}

// Touch stores to every page of the buffer (step 4 of the experiment:
// "writes again to each page of the memory block").
func (b *Buffer) Touch() error {
	return b.proc.kernel.Touch(b.proc.as, b.Addr, b.Pages())
}

// ResidentPFNs returns the frame backing each page of the buffer
// (phys.NoPFN where swapped out), without perturbing residency.
func (b *Buffer) ResidentPFNs() ([]phys.PFN, error) {
	out := make([]phys.PFN, b.Pages())
	for i := range out {
		pfn, err := b.proc.kernel.ResidentPFN(b.proc.as, b.Addr+pgtable.VAddr(i*phys.PageSize))
		if err != nil {
			return nil, err
		}
		out[i] = pfn
	}
	return out, nil
}

// PhysAddrs walks the page tables for every page of the buffer (faulting
// pages in) — this is how the non-kiobuf registration paths learn the
// physical layout at registration time.
func (b *Buffer) PhysAddrs() ([]phys.Addr, error) {
	out := make([]phys.Addr, b.Pages())
	for i := range out {
		a, err := b.proc.kernel.WalkPhys(b.proc.as, b.Addr+pgtable.VAddr(i*phys.PageSize))
		if err != nil {
			return nil, err
		}
		out[i] = a
	}
	return out, nil
}

// pattern fills dst with a reproducible byte sequence for (seed, page).
func pattern(dst []byte, seed byte, page int) {
	s := uint32(seed)*2654435761 + uint32(page)*40503 + 0x9e3779b9
	for i := range dst {
		s = s*1664525 + 1013904223
		dst[i] = byte(s >> 24)
	}
}
