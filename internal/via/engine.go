package via

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/trace"
)

// The NIC's default descriptor processing is synchronous: PostSend runs
// the DMA engine inline and the descriptor is complete on return, which
// keeps single-threaded tests deterministic.  Real hardware is
// asynchronous — the doorbell enqueues work and the engine runs it in
// the background while the CPU continues (the whole point of the E11
// analysis).  StartEngine switches a NIC to that mode.
//
// The engine is multi-lane: a fixed set of worker goroutines, each
// owning one bounded FIFO queue.  A VI is hashed to a lane by its id,
// so one VI's descriptors are always processed by the same single
// consumer in posting order — the VIA ordering rule — while
// independent VIs proceed in parallel across lanes.

// engine is the background descriptor processor.
type engine struct {
	lanes []engineLane
	wg    sync.WaitGroup
}

// engineLane is one worker's queue.  The mutex orders enqueues against
// StopEngine's close so a post racing a stop can never write to a
// closed channel.
type engineLane struct {
	mu     sync.Mutex
	closed bool
	ch     chan engineItem
}

type engineItem struct {
	vi *VI
	d  *Descriptor
}

// engineQueueDepth bounds the posted-but-unprocessed descriptor count
// per lane (the send-queue depth of the card).  A post finding its
// lane full completes the descriptor with StatusQueueOverflow instead
// of blocking the doorbell.
const engineQueueDepth = 256

// maxEngineLanes caps the lane count; beyond the core count extra lanes
// only add scheduling overhead.
const maxEngineLanes = 64

// StartEngine switches the NIC to asynchronous descriptor processing
// with one lane per available CPU: PostSend returns as soon as the
// descriptor is enqueued, and descriptors of one VI are processed in
// posting order.  Callers learn about completion through
// Descriptor.Wait/Done or a CQ.
func (n *NIC) StartEngine() { n.StartEngineLanes(0) }

// StartEngineLanes starts the engine with an explicit lane count
// (values <= 0 select one lane per available CPU).  It is a no-op if
// the engine is already running.
func (n *NIC) StartEngineLanes(lanes int) {
	if lanes <= 0 {
		lanes = runtime.GOMAXPROCS(0)
	}
	if lanes > maxEngineLanes {
		lanes = maxEngineLanes
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.eng != nil {
		return
	}
	e := &engine{lanes: make([]engineLane, lanes)}
	for i := range e.lanes {
		e.lanes[i].ch = make(chan engineItem, engineQueueDepth)
	}
	n.eng = e
	e.wg.Add(lanes)
	for i := range e.lanes {
		go func(lane int, ln *engineLane) {
			defer e.wg.Done()
			for item := range ln.ch {
				if obs := n.obs.Load(); obs != nil {
					obs.trc.Instant(trace.KindLaneDequeue, uint64(lane), uint64(len(ln.ch)))
				}
				// SiteLane models the lane hardware itself: stall rules
				// delay the dequeue (a slow lane), error rules fault the
				// descriptor as a DMA engine failure.
				if inj := n.inj.Load(); inj != nil {
					if err := inj.Check(faultinject.Op{Site: SiteLane, Key: item.vi.uid}); err != nil {
						n.faultSend(item.vi, item.d, fmt.Errorf("%w: %w", ErrDMAFault, err))
						continue
					}
				}
				n.process(item.vi, item.d)
			}
		}(i, &e.lanes[i])
	}
}

// StopEngine drains the lane queues, stops the worker goroutines and
// returns the NIC to synchronous processing.  Posts racing the stop
// are processed inline after the drain (see dispatch), so no
// descriptor is ever lost.
func (n *NIC) StopEngine() {
	n.mu.Lock()
	e := n.eng
	n.eng = nil
	n.mu.Unlock()
	if e == nil {
		return
	}
	for i := range e.lanes {
		ln := &e.lanes[i]
		ln.mu.Lock()
		ln.closed = true
		close(ln.ch)
		ln.mu.Unlock()
	}
	e.wg.Wait()
}

// EngineRunning reports whether asynchronous processing is active.
func (n *NIC) EngineRunning() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.eng != nil
}

// EngineLanes reports the number of engine lanes (0 when synchronous).
func (n *NIC) EngineLanes() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.eng == nil {
		return 0
	}
	return len(n.eng.lanes)
}

// enqueue places the descriptor on the VI's lane.  It reports false
// when the lane has been closed by a concurrent StopEngine — the
// caller must then run the descriptor itself.  A full lane completes
// the descriptor with StatusQueueOverflow (still reported true: the
// descriptor has been dealt with).  obs is the caller's loaded
// observer (nil when detached).
func (e *engine) enqueue(obs *nicObs, v *VI, d *Descriptor) bool {
	lane := v.id % len(e.lanes)
	ln := &e.lanes[lane]
	ln.mu.Lock()
	if ln.closed {
		ln.mu.Unlock()
		return false
	}
	select {
	case ln.ch <- engineItem{vi: v, d: d}:
		if obs != nil {
			depth := len(ln.ch)
			obs.laneDepth.Observe(int64(depth))
			obs.trc.Instant(trace.KindLaneEnqueue, uint64(lane), uint64(depth))
		}
		ln.mu.Unlock()
		return true
	default:
	}
	ln.mu.Unlock()
	v.completeSend(d, StatusQueueOverflow, 0)
	return true
}

// dispatch routes a posted descriptor either inline (synchronous mode)
// or onto its VI's engine lane.
func (n *NIC) dispatch(v *VI, d *Descriptor) {
	n.mu.Lock()
	e := n.eng
	n.mu.Unlock()
	if e == nil {
		n.process(v, d)
		return
	}
	if !e.enqueue(n.obs.Load(), v, d) {
		// Lost the race with StopEngine.  Wait for the lanes to finish
		// draining so this VI's earlier descriptors complete first, then
		// process inline — per-VI order holds and the completion is
		// never lost.
		e.wg.Wait()
		n.process(v, d)
	}
}
