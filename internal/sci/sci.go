// Package sci simulates the SCI (Scalable Coherent Interface)
// distributed-shared-memory substrate of the group's combined VIA/SCI
// project — the system the paper's locking mechanism was built to serve.
// It implements the *improved* memory management the companion articles
// propose ("Memory Management in a Combined VIA/SCI Hardware"): instead
// of one fixed 512 KiB-aligned window, each bridge has
//
//   - an upstream translation table mapping SCI-visible pages to local
//     physical pages, page-granular, covering arbitrary process memory
//     that was exported — which is exactly why exported memory must be
//     locked reliably: the table records physical addresses;
//   - a downstream translation table mapping pages of a local import
//     window to (remote node, remote SCI page).
//
// Programmed I/O (remote loads/stores through an imported window)
// traverses: host page tables → downstream table → fabric → remote
// upstream table → remote physical memory.  The exporter's kernel pins
// the exported pages with a pluggable core.Locker, so the reproduction
// can show remote PIO silently landing in orphaned frames when the
// locking strategy is broken — the same failure as the VIA TPT case.
package sci

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/mm"
	"repro/internal/pgtable"
	"repro/internal/phys"
	"repro/internal/simtime"
)

// NodeID identifies a bridge on the fabric.
type NodeID uint16

// ExportID names one exported region on its node.
type ExportID uint32

// Errors returned by the SCI layer.
var (
	ErrTableFull    = errors.New("sci: translation table full")
	ErrBadExport    = errors.New("sci: unknown export")
	ErrBadImport    = errors.New("sci: unknown import")
	ErrBounds       = errors.New("sci: access outside region")
	ErrUnknownNode  = errors.New("sci: unknown node id")
	ErrStaleMapping = errors.New("sci: mapping no longer valid")
)

// Stats counts bridge activity.
type Stats struct {
	RemoteWrites  uint64 // PIO write transactions handled for remote nodes
	RemoteReads   uint64 // PIO read transactions handled for remote nodes
	BytesIn       uint64 // payload bytes written into this node
	BytesOut      uint64 // payload bytes read out of this node
	ExportsActive int    // current exports
	ImportsActive int    // current imports
}

// Export is one exported region: a contiguous range of SCI pages backed
// by pinned local memory.
type Export struct {
	// ID names the export on its node.
	ID ExportID
	// SCIPage is the first SCI page number assigned to the region.
	SCIPage uint32
	// Pages is the region length in pages.
	Pages int

	bridge *Bridge
	lock   *core.Lock
	addr   pgtable.VAddr
	as     *mm.AddressSpace
	tag    Tag
}

// Import is a window onto a remote export.
type Import struct {
	bridge  *Bridge
	remote  NodeID
	sciPage uint32
	pages   int
	valid   bool
	tag     Tag
}

// Bridge is one node's PCI–SCI bridge.
type Bridge struct {
	node   NodeID
	kernel *mm.Kernel
	meter  *simtime.Meter
	fabric *Fabric
	locker core.Locker

	mu sync.Mutex
	// upstream: SCI page number -> local physical page address.
	upstream     map[uint32]phys.Addr
	upstreamFree int
	nextSCIPage  uint32
	exports      map[ExportID]*Export
	nextExport   ExportID
	imports      map[*Import]struct{}
	stats        Stats
	dmaStats     DMAStats
}

// DefaultUpstreamSlots bounds exportable memory per node (32 MiB).
const DefaultUpstreamSlots = 8192

// NewBridge attaches a bridge to a node's kernel.  The locker pins
// exported memory; pass the strategy under study.
func NewBridge(node NodeID, k *mm.Kernel, locker core.Locker, upstreamSlots int) *Bridge {
	if upstreamSlots <= 0 {
		upstreamSlots = DefaultUpstreamSlots
	}
	return &Bridge{
		node:         node,
		kernel:       k,
		meter:        k.Meter(),
		locker:       locker,
		upstream:     make(map[uint32]phys.Addr),
		upstreamFree: upstreamSlots,
		nextSCIPage:  1,
		exports:      make(map[ExportID]*Export),
		nextExport:   1,
		imports:      make(map[*Import]struct{}),
	}
}

// Node returns the bridge's fabric id.
func (b *Bridge) Node() NodeID { return b.node }

// Stats returns a snapshot of bridge statistics.
func (b *Bridge) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.stats
	s.ExportsActive = len(b.exports)
	s.ImportsActive = len(b.imports)
	return s
}

// charge is nil-safe virtual accounting.
func (b *Bridge) charge(d simtime.Duration) {
	if b.meter != nil {
		b.meter.Charge(d)
	}
}

func (b *Bridge) costs() simtime.CostModel {
	if b.meter == nil {
		return simtime.CostModel{}
	}
	return b.meter.Costs
}

// Export pins [addr, addr+pages·PageSize) of the process with the
// bridge's locker and enters the page list into the upstream table.
// The returned SCI page range is what remote importers map.
func (b *Bridge) Export(as *mm.AddressSpace, addr pgtable.VAddr, pages int) (*Export, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("sci: export of %d pages", pages)
	}
	b.mu.Lock()
	if b.upstreamFree < pages {
		b.mu.Unlock()
		return nil, fmt.Errorf("%w: need %d upstream slots, %d free", ErrTableFull, pages, b.upstreamFree)
	}
	b.upstreamFree -= pages
	b.mu.Unlock()

	lock, err := b.locker.Lock(b.kernel, as, addr, pages*phys.PageSize)
	if err != nil {
		b.mu.Lock()
		b.upstreamFree += pages
		b.mu.Unlock()
		return nil, fmt.Errorf("sci: export lock (%s): %w", b.locker.Name(), err)
	}

	b.mu.Lock()
	defer b.mu.Unlock()
	exp := &Export{
		ID:      b.nextExport,
		SCIPage: b.nextSCIPage,
		Pages:   pages,
		bridge:  b,
		lock:    lock,
		addr:    addr,
		as:      as,
	}
	b.nextExport++
	b.nextSCIPage += uint32(pages)
	for i, pa := range lock.Pages {
		b.upstream[exp.SCIPage+uint32(i)] = pa
	}
	b.charge(b.costs().KernelCall)
	b.exports[exp.ID] = exp
	return exp, nil
}

// Unexport removes the region from the upstream table and releases the
// lock.
func (b *Bridge) Unexport(exp *Export) error {
	b.mu.Lock()
	if _, ok := b.exports[exp.ID]; !ok {
		b.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrBadExport, exp.ID)
	}
	delete(b.exports, exp.ID)
	for i := 0; i < exp.Pages; i++ {
		delete(b.upstream, exp.SCIPage+uint32(i))
	}
	b.upstreamFree += exp.Pages
	b.mu.Unlock()
	b.charge(b.costs().KernelCall)
	return exp.lock.Unlock()
}

// Consistent reports how many of the export's pages are still backed by
// the frames recorded in the upstream table.
func (exp *Export) Consistent() (ok, total int, err error) {
	start := pgtable.PageOf(exp.addr)
	total = exp.Pages
	for i := 0; i < total; i++ {
		pfn, err := exp.bridge.kernel.ResidentPFN(exp.as, (start + pgtable.VPN(i)).Addr())
		if err != nil {
			return ok, total, err
		}
		if pfn != phys.NoPFN && pfn.Addr() == exp.lock.Pages[i] {
			ok++
		}
	}
	return ok, total, nil
}

// Import maps a remote export's SCI page range into a local window.
func (b *Bridge) Import(remote NodeID, sciPage uint32, pages int) (*Import, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("sci: import of %d pages", pages)
	}
	if b.fabric == nil {
		return nil, fmt.Errorf("sci: bridge %d not attached to a fabric", b.node)
	}
	if _, ok := b.fabric.bridge(remote); !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, remote)
	}
	imp := &Import{bridge: b, remote: remote, sciPage: sciPage, pages: pages, valid: true}
	b.mu.Lock()
	b.imports[imp] = struct{}{}
	b.mu.Unlock()
	b.charge(b.costs().KernelCall)
	return imp, nil
}

// Unimport tears the window down.
func (b *Bridge) Unimport(imp *Import) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.imports[imp]; !ok {
		return fmt.Errorf("%w", ErrBadImport)
	}
	delete(b.imports, imp)
	imp.valid = false
	return nil
}

// Bytes reports the window length in bytes.
func (imp *Import) Bytes() int { return imp.pages * phys.PageSize }

// sciPacket is the SCI transaction payload granularity (DMOVE64).
const sciPacket = 64

// Write performs remote stores through the window: the importing CPU
// issues stores, the local bridge translates downstream and ships SCI
// request packets, the remote bridge translates upstream and writes
// physical memory.  Streams at PIO bandwidth after one wire crossing.
func (imp *Import) Write(off int, data []byte) error {
	if err := imp.check(off, len(data)); err != nil {
		return err
	}
	b := imp.bridge
	b.charge(b.costs().WireLatency)
	b.meter.ChargeN(b.costs().PIOPerByte, len(data))
	return imp.transfer(off, data, true)
}

// Read performs remote loads through the window.  SCI remote reads are
// round trips per packet — the reason the companion protocols avoid
// them ("only remote writes and local reads are used") — and are
// charged accordingly.
func (imp *Import) Read(off int, data []byte) error {
	if err := imp.check(off, len(data)); err != nil {
		return err
	}
	b := imp.bridge
	packets := (len(data) + sciPacket - 1) / sciPacket
	b.meter.ChargeN(2*b.costs().WireLatency, packets)
	b.meter.ChargeN(b.costs().PIOPerByte, len(data))
	return imp.transfer(off, data, false)
}

func (imp *Import) check(off, n int) error {
	if !imp.valid {
		return ErrStaleMapping
	}
	if off < 0 || n < 0 || off+n > imp.Bytes() {
		return fmt.Errorf("%w: [%d,+%d) of window %d", ErrBounds, off, n, imp.Bytes())
	}
	return nil
}

// transfer moves data page-chunk by page-chunk through the remote
// bridge's upstream table.
func (imp *Import) transfer(off int, data []byte, write bool) error {
	remote, ok := imp.bridge.fabric.bridge(imp.remote)
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, imp.remote)
	}
	done := 0
	for done < len(data) {
		cur := off + done
		page := uint32(cur / phys.PageSize)
		pageOff := cur % phys.PageSize
		chunk := phys.PageSize - pageOff
		if chunk > len(data)-done {
			chunk = len(data) - done
		}
		if err := remote.upstreamAccess(imp.sciPage+page, pageOff, data[done:done+chunk], write); err != nil {
			return err
		}
		done += chunk
	}
	return nil
}

// upstreamAccess is the remote bridge's side of a transaction: upstream
// translation plus the physical access.  No page tables are consulted —
// which is why a stale upstream table misdirects the access silently.
func (b *Bridge) upstreamAccess(sciPage uint32, off int, data []byte, write bool) error {
	b.mu.Lock()
	pa, ok := b.upstream[sciPage]
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("sci: node %d has no upstream mapping for SCI page %d", b.node, sciPage)
	}
	var err error
	if write {
		err = b.kernel.Phys().WritePhys(pa+phys.Addr(off), data)
	} else {
		err = b.kernel.Phys().ReadPhys(pa+phys.Addr(off), data)
	}
	if err != nil {
		return err
	}
	b.mu.Lock()
	if write {
		b.stats.RemoteWrites++
		b.stats.BytesIn += uint64(len(data))
	} else {
		b.stats.RemoteReads++
		b.stats.BytesOut += uint64(len(data))
	}
	b.mu.Unlock()
	return nil
}

// Fabric connects bridges into one SCI ring.
type Fabric struct {
	mu      sync.Mutex
	bridges map[NodeID]*Bridge
}

// NewFabric creates an empty ring.
func NewFabric() *Fabric {
	return &Fabric{bridges: make(map[NodeID]*Bridge)}
}

// Attach adds a bridge to the ring.
func (f *Fabric) Attach(b *Bridge) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.bridges[b.node]; ok {
		return fmt.Errorf("sci: node %d already attached", b.node)
	}
	f.bridges[b.node] = b
	b.fabric = f
	return nil
}

func (f *Fabric) bridge(id NodeID) (*Bridge, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	b, ok := f.bridges[id]
	return b, ok
}
