// Package mpi is a compact MPI-flavoured message-passing library over
// the VIA stack, in the shape of the CHEMPI design the companion
// articles describe: every message is announced by a small header (the
// "message info struct"), payloads travel through the msg layer's
// eager/one-copy/zero-copy protocols, receives match on (source, tag)
// with an unexpected-message queue, and the collectives are mapped onto
// point-to-point transfers.
//
// Deliberate simplifications, documented rather than hidden: no
// MPI_ANY_SOURCE (the first article in the collection is devoted to how
// much machinery that needs), no derived datatypes (buffers are byte
// ranges), and communicators are the single world.
//
// Scaling features (PR 7): worlds can defer endpoint creation until a
// pair first talks (Lazy), share one registration cache per rank so
// collectives hit the cache across endpoints, and multiplex every
// endpoint of a rank over one shared completion queue (SharedCQ) so the
// poller count grows with ranks, not with the O(n²) VI population.
package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/regcache"
	"repro/internal/via"
	"repro/internal/vipl"
)

// Errors returned by the library.
var (
	ErrRank     = errors.New("mpi: rank out of range")
	ErrSelfSend = errors.New("mpi: send to self not supported")
	ErrTooSmall = errors.New("mpi: receive buffer smaller than message")
)

// header is the message info struct: tag and payload size.
const headerBytes = 16

// Algo selects the collective algorithm family.
type Algo string

const (
	// AlgoLog (the default) uses the logarithmic algorithms:
	// dissemination barrier, binomial broadcast/reduce,
	// recursive-doubling allreduce, ring allreduce for vectors and
	// pairwise alltoall.
	AlgoLog Algo = "log"
	// AlgoLinear keeps the original O(n) root-centric algorithms as an
	// ablation baseline for the E21 sweep.
	AlgoLinear Algo = "linear"
)

// WorldOptions parameterizes world construction.
type WorldOptions struct {
	// CacheRegions bounds each rank's registration cache
	// (0 = unbounded).  The cache is shared by every endpoint of the
	// rank, so a buffer registered for one peer is a hit for all.
	CacheRegions int
	// Lazy defers endpoint-pair creation until two ranks first
	// communicate.  Log-structured collectives touch O(n log n) of the
	// O(n²) possible pairs, so large worlds skip most of the setup.
	Lazy bool
	// SharedCQ gives each rank one CQMux: every endpoint's VI completes
	// into the shared queue and one poller goroutine per rank
	// multiplexes them (the epoll analogue for thousands of VIs).
	SharedCQ bool
	// Algo selects the collective algorithms ("" = AlgoLog).
	Algo Algo
	// Endpoint seeds every endpoint's msg options (ring geometry,
	// RDMAEager, protocol thresholds).  SharedCache and Mux are filled
	// in per rank.
	Endpoint msg.Options
	// Reliability, when non-nil, enables the reliability layer on every
	// endpoint with this configuration.
	Reliability *msg.ReliabilityConfig
	// EngineLanes, when > 0, starts each node's NIC engine with that
	// many lanes for asynchronous descriptor processing.  World.Close
	// stops them.
	EngineLanes int
	// DoorbellCoalesce, when > 1, arms doorbell coalescing with that
	// window on every node NIC (requires EngineLanes): the collectives'
	// bursts of small sends — headers, scalar cells, ring segments —
	// share one doorbell and one lane wakeup per window instead of one
	// each.  World.Close disarms it.
	DoorbellCoalesce int
}

// World is one MPI job: n ranks spread round-robin over the cluster's
// nodes, connected with endpoint pairs (all upfront, or lazily).
type World struct {
	cluster *cluster.Cluster
	ranks   []*Rank
	opts    WorldOptions
	// mu guards lazy pairing: peers slices are written (and, in lazy
	// mode, read) under it.
	mu             sync.Mutex
	startedEngines bool
}

// Rank is one MPI process.
type Rank struct {
	world *World
	id    int
	proc  *proc.Process
	nic   *vipl.Nic
	// cache is the rank-wide registration cache shared by all of the
	// rank's endpoints.
	cache *regcache.Cache
	// mux is the rank's shared completion-queue poller (nil unless
	// SharedCQ).
	mux *via.CQMux
	// peers[j] is this rank's endpoint towards rank j (nil for self or,
	// in lazy worlds, not-yet-connected pairs).
	peers []*msg.Endpoint
	// unexpected[j] queues messages from rank j that arrived while a
	// receive with a different tag was outstanding.
	unexpected [][]pending
	// hdrBuf is the reusable header send buffer (ranks are
	// single-threaded, so reuse is safe).
	hdrBuf *proc.Buffer
	// hdrRecv is the reusable header receive buffer.
	hdrRecv *proc.Buffer
	// epoch counts collective operations entered; cascaded is the last
	// epoch whose abort this rank has broadcast (see abortColl).
	epoch    uint64
	cascaded uint64
	// abortEpoch is the highest collective epoch any peer has flagged
	// aborted, delivered through the endpoints' urgent doorbell.  It is
	// written from peers' goroutines, hence atomic.
	abortEpoch atomic.Uint64
	// scratch pools collective scratch buffers by size so repeated
	// collectives reuse the same virtual addresses — which is what turns
	// their per-step registrations into registration-cache hits.
	scratch map[int][]*proc.Buffer
}

type pending struct {
	tag  int
	data *proc.Buffer // holds exactly the payload
	size int
}

// NewWorld builds an n-rank world over the cluster with default
// options, creating one process per rank on node (rank mod nodes) and
// pairing endpoints between every rank pair.  cacheRegions bounds each
// rank's registration cache.
func NewWorld(c *cluster.Cluster, n, cacheRegions int) (*World, error) {
	return NewWorldOpts(c, n, WorldOptions{CacheRegions: cacheRegions})
}

// NewWorldOpts builds an n-rank world with explicit options.
func NewWorldOpts(c *cluster.Cluster, n int, o WorldOptions) (*World, error) {
	if n < 2 {
		return nil, fmt.Errorf("mpi: world of %d ranks", n)
	}
	w := &World{cluster: c, opts: o}
	for i := 0; i < n; i++ {
		node := c.Nodes[i%len(c.Nodes)]
		p := node.NewProcess(fmt.Sprintf("rank%d", i), false)
		r := &Rank{
			world:      w,
			id:         i,
			proc:       p,
			nic:        node.OpenNic(p),
			peers:      make([]*msg.Endpoint, n),
			unexpected: make([][]pending, n),
			scratch:    make(map[int][]*proc.Buffer),
		}
		r.cache = regcache.New(r.nic, o.CacheRegions)
		if o.SharedCQ {
			r.mux = via.NewCQMux(via.DefaultCQDepth)
		}
		var err error
		if r.hdrBuf, err = p.Malloc(headerBytes); err != nil {
			return nil, err
		}
		if r.hdrRecv, err = p.Malloc(headerBytes); err != nil {
			return nil, err
		}
		w.ranks = append(w.ranks, r)
	}
	if o.EngineLanes > 0 {
		for _, node := range c.Nodes {
			if !node.NIC.EngineRunning() {
				node.NIC.StartEngineLanes(o.EngineLanes)
			}
			if o.DoorbellCoalesce > 1 {
				node.NIC.SetDoorbellCoalesce(o.DoorbellCoalesce)
			}
		}
		w.startedEngines = true
	}
	if !o.Lazy {
		w.mu.Lock()
		defer w.mu.Unlock()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if err := w.pairLocked(i, j); err != nil {
					return nil, err
				}
			}
		}
	}
	return w, nil
}

// endpointOpts derives a rank's per-endpoint msg options from the world
// options: the rank-wide cache and (when SharedCQ) the rank's mux.
func (w *World) endpointOpts(r *Rank) msg.Options {
	o := w.opts.Endpoint
	o.SharedCache = r.cache
	if r.mux != nil {
		o.Mux = r.mux
	}
	return o
}

// pairLocked creates and pairs the endpoints between ranks i and j.
// Caller holds w.mu.
func (w *World) pairLocked(i, j int) error {
	ri, rj := w.ranks[i], w.ranks[j]
	ei, err := msg.NewEndpoint(fmt.Sprintf("r%d-r%d", i, j), ri.nic, w.cluster.Meter,
		w.opts.CacheRegions, w.endpointOpts(ri))
	if err != nil {
		return err
	}
	ej, err := msg.NewEndpoint(fmt.Sprintf("r%d-r%d", j, i), rj.nic, w.cluster.Meter,
		w.opts.CacheRegions, w.endpointOpts(rj))
	if err != nil {
		return err
	}
	if err := msg.Pair(w.cluster.Network, ei, ej); err != nil {
		return err
	}
	if w.opts.Reliability != nil {
		ei.EnableReliability(*w.opts.Reliability)
		ej.EnableReliability(*w.opts.Reliability)
	}
	ei.SetUrgentSink(ri.noteAbort)
	ej.SetUrgentSink(rj.noteAbort)
	ri.peers[j] = ei
	rj.peers[i] = ej
	return nil
}

// noteAbort folds a peer's abort doorbell into the rank's high-water
// aborted epoch.  Runs on the notifying peer's goroutine.
func (r *Rank) noteAbort(epoch uint64) {
	for {
		cur := r.abortEpoch.Load()
		if epoch <= cur || r.abortEpoch.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// endpoint returns rank i's endpoint towards rank j, creating the pair
// on first use in lazy worlds.
func (w *World) endpoint(i, j int) (*msg.Endpoint, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if ep := w.ranks[i].peers[j]; ep != nil {
		return ep, nil
	}
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	if err := w.pairLocked(lo, hi); err != nil {
		return nil, err
	}
	return w.ranks[i].peers[j], nil
}

// connectedPeers snapshots the endpoints a rank currently has (for the
// abort cascade: never force lazy pairing just to notify).
func (w *World) connectedPeers(r *Rank) []*msg.Endpoint {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]*msg.Endpoint, len(r.peers))
	copy(out, r.peers)
	return out
}

// Size reports the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i.
func (w *World) Rank(i int) (*Rank, error) {
	if i < 0 || i >= len(w.ranks) {
		return nil, fmt.Errorf("%w: %d of %d", ErrRank, i, len(w.ranks))
	}
	return w.ranks[i], nil
}

// Pairs reports how many endpoint pairs exist right now (lazy worlds
// grow this as ranks talk).
func (w *World) Pairs() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	total := 0
	for _, r := range w.ranks {
		for _, ep := range r.peers {
			if ep != nil {
				total++
			}
		}
	}
	return total / 2
}

// CacheStats aggregates every rank's registration-cache statistics.
func (w *World) CacheStats() regcache.Stats {
	var total regcache.Stats
	for _, r := range w.ranks {
		st := r.cache.Stats()
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Evictions += st.Evictions
		total.Failures += st.Failures
		total.EvictErrors += st.EvictErrors
		total.ResetInvalidations += st.ResetInvalidations
	}
	return total
}

// MuxStats aggregates every rank's completion-mux statistics (zero in
// worlds without SharedCQ).
func (w *World) MuxStats() via.CQMuxStats {
	var total via.CQMuxStats
	for _, r := range w.ranks {
		if r.mux == nil {
			continue
		}
		st := r.mux.Stats()
		total.Drained += st.Drained
		total.Delivered += st.Delivered
		total.SelfDrains += st.SelfDrains
		total.Bypassed += st.Bypassed
		total.Evicted += st.Evicted
		total.Pending += st.Pending
		total.VIs += st.VIs
	}
	return total
}

// Close stops every rank's mux poller and any NIC engines the world
// started.  The world must be quiescent (no collective in flight).
func (w *World) Close() {
	for _, r := range w.ranks {
		if r.mux != nil {
			r.mux.Close()
		}
	}
	if w.startedEngines {
		for _, node := range w.cluster.Nodes {
			node.NIC.SetDoorbellCoalesce(0)
			if node.NIC.EngineRunning() {
				node.NIC.StopEngine()
			}
		}
	}
}

// getScratch returns a pooled buffer of exactly size bytes, allocating
// on pool miss.  Ranks are single-threaded, so the pool needs no lock;
// the detached half of an exchange allocates privately instead.
func (r *Rank) getScratch(size int) (*proc.Buffer, error) {
	if bufs := r.scratch[size]; len(bufs) > 0 {
		b := bufs[len(bufs)-1]
		r.scratch[size] = bufs[:len(bufs)-1]
		return b, nil
	}
	return r.proc.Malloc(size)
}

// putScratch returns a buffer to the rank's pool for reuse.
func (r *Rank) putScratch(b *proc.Buffer) {
	r.scratch[b.Bytes] = append(r.scratch[b.Bytes], b)
}

// ID reports the rank number.
func (r *Rank) ID() int { return r.id }

// Process returns the rank's process (for buffer allocation).
func (r *Rank) Process() *proc.Process { return r.proc }

// Cache returns the rank's shared registration cache.
func (r *Rank) Cache() *regcache.Cache { return r.cache }

// Mux returns the rank's completion mux (nil without SharedCQ).
func (r *Rank) Mux() *via.CQMux { return r.mux }

// Send transmits buf to rank dst with the given tag (blocking, like
// MPI_Send).  The payload protocol is chosen by size (msg.Auto).
func (r *Rank) Send(dst, tag int, buf *proc.Buffer) error {
	ep, err := r.peer(dst)
	if err != nil {
		return err
	}
	return r.sendOn(ep, dst, tag, buf)
}

// sendOn is Send over an already-resolved endpoint.
func (r *Rank) sendOn(ep *msg.Endpoint, dst, tag int, buf *proc.Buffer) error {
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(tag))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(buf.Bytes))
	if err := r.hdrBuf.Write(0, hdr[:]); err != nil {
		return err
	}
	if _, err := ep.Send(r.hdrBuf, msg.Eager); err != nil {
		return fmt.Errorf("mpi: header to rank %d: %w", dst, err)
	}
	if _, err := ep.Send(buf, msg.Auto); err != nil {
		return fmt.Errorf("mpi: payload to rank %d: %w", dst, err)
	}
	return nil
}

// sendDetached is Send with a private header buffer, used by the
// concurrent half of collective exchanges so an in-flight background
// send never shares hdrBuf with the rank's foreground traffic.
func (r *Rank) sendDetached(dst, tag int, buf *proc.Buffer) error {
	ep, err := r.peer(dst)
	if err != nil {
		return err
	}
	hdrBuf, err := r.proc.Malloc(headerBytes)
	if err != nil {
		return err
	}
	defer func() { _ = r.proc.Free(hdrBuf) }()
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(tag))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(buf.Bytes))
	if err := hdrBuf.Write(0, hdr[:]); err != nil {
		return err
	}
	if _, err := ep.Send(hdrBuf, msg.Eager); err != nil {
		return fmt.Errorf("mpi: header to rank %d: %w", dst, err)
	}
	if _, err := ep.Send(buf, msg.Auto); err != nil {
		return fmt.Errorf("mpi: payload to rank %d: %w", dst, err)
	}
	return nil
}

// Recv receives a message with the given tag from rank src into buf and
// returns the payload length (blocking, like MPI_Recv with a specific
// source).  Messages from src with other tags are queued as unexpected.
func (r *Rank) Recv(src, tag int, buf *proc.Buffer) (int, error) {
	ep, err := r.peer(src)
	if err != nil {
		return 0, err
	}
	// First serve the unexpected queue.
	for i, p := range r.unexpected[src] {
		if p.tag == tag {
			r.unexpected[src] = append(r.unexpected[src][:i], r.unexpected[src][i+1:]...)
			return r.copyOut(p, buf)
		}
	}
	for {
		if err := r.recvHeaderInto(ep); err != nil {
			return 0, err
		}
		gotTag, size, err := r.parseHeader()
		if err != nil {
			return 0, err
		}
		if gotTag == tag {
			if size > buf.Bytes {
				return 0, fmt.Errorf("%w: message %d, buffer %d", ErrTooSmall, size, buf.Bytes)
			}
			n, err := ep.Recv(buf)
			if err != nil {
				return 0, err
			}
			if n != size {
				return n, fmt.Errorf("mpi: payload %d, header said %d", n, size)
			}
			return n, nil
		}
		// Unexpected: land the payload in a fresh buffer and queue it.
		stash, err := r.proc.Malloc(size)
		if err != nil {
			return 0, err
		}
		if _, err := ep.Recv(stash); err != nil {
			return 0, err
		}
		r.unexpected[src] = append(r.unexpected[src], pending{tag: gotTag, data: stash, size: size})
	}
}

// copyOut moves a stashed unexpected message into the user buffer.
func (r *Rank) copyOut(p pending, buf *proc.Buffer) (int, error) {
	if p.size > buf.Bytes {
		return 0, fmt.Errorf("%w: message %d, buffer %d", ErrTooSmall, p.size, buf.Bytes)
	}
	tmp := make([]byte, p.size)
	if err := p.data.Read(0, tmp); err != nil {
		return 0, err
	}
	if err := buf.Write(0, tmp); err != nil {
		return 0, err
	}
	if err := r.proc.Free(p.data); err != nil {
		return 0, err
	}
	return p.size, nil
}

func (r *Rank) recvHeaderInto(ep *msg.Endpoint) error {
	n, err := ep.Recv(r.hdrRecv)
	if err != nil {
		return err
	}
	if n != headerBytes {
		return fmt.Errorf("mpi: header of %d bytes", n)
	}
	return nil
}

func (r *Rank) parseHeader() (tag, size int, err error) {
	var hdr [headerBytes]byte
	if err := r.hdrRecv.Read(0, hdr[:]); err != nil {
		return 0, 0, err
	}
	return int(binary.LittleEndian.Uint64(hdr[0:])),
		int(binary.LittleEndian.Uint64(hdr[8:])), nil
}

func (r *Rank) peer(other int) (*msg.Endpoint, error) {
	if other < 0 || other >= len(r.peers) {
		return nil, fmt.Errorf("%w: %d of %d", ErrRank, other, len(r.peers))
	}
	if other == r.id {
		return nil, ErrSelfSend
	}
	if r.world.opts.Lazy {
		return r.world.endpoint(r.id, other)
	}
	return r.peers[other], nil
}
