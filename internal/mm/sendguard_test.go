package mm

import (
	"errors"
	"testing"

	"repro/internal/pgtable"
	"repro/internal/phys"
)

func TestRevokeWriteFailFast(t *testing.T) {
	k := smallKernel()
	as := k.CreateProcess("p", false)
	addr := mmapRW(t, k, as, 2)
	if err := k.CopyToUser(as, addr, []byte("hello")); err != nil {
		t.Fatal(err)
	}

	var scribbled []int
	g, err := k.RevokeWrite(as, addr, 2, GuardFailFast, func(page int) { scribbled = append(scribbled, page) })
	if err != nil {
		t.Fatal(err)
	}

	// Reads pass through.
	got := make([]byte, 5)
	if err := k.CopyFromUser(as, addr, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("read %q under guard", got)
	}

	// Writes fail typed, on the faulting access.
	err = k.CopyToUser(as, addr, []byte("x"))
	if !errors.Is(err, ErrWriteDuringFlight) {
		t.Fatalf("guarded write: %v, want ErrWriteDuringFlight", err)
	}
	if g.Scribbles() != 1 {
		t.Fatalf("Scribbles = %d, want 1", g.Scribbles())
	}
	if len(scribbled) != 1 || scribbled[0] != 0 {
		t.Fatalf("callback pages = %v, want [0]", scribbled)
	}
	if k.Stats().ScribbleFaults != 1 {
		t.Fatalf("stats.ScribbleFaults = %d", k.Stats().ScribbleFaults)
	}

	// Data is untouched by the failed store.
	if err := k.CopyFromUser(as, addr, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("data after failed store: %q", got)
	}

	if err := k.RestoreWrite(g); err != nil {
		t.Fatal(err)
	}
	if err := k.CopyToUser(as, addr, []byte("world")); err != nil {
		t.Fatalf("write after restore: %v", err)
	}
	// Idempotent release.
	if err := k.RestoreWrite(g); err != nil {
		t.Fatal(err)
	}
	if err := k.RestoreWrite(nil); err != nil {
		t.Fatal(err)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRevokeWriteCopyOnTouch(t *testing.T) {
	k := smallKernel()
	as := k.CreateProcess("p", false)
	addr := mmapRW(t, k, as, 1)
	if err := k.CopyToUser(as, addr, []byte("frozen")); err != nil {
		t.Fatal(err)
	}

	// Pin first (registration order), then revoke: the pin is the
	// transfer's snapshot reference.
	pfns, err := k.PinUserPages(as, addr, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	g, err := k.RevokeWrite(as, addr, 1, GuardCopyOnTouch, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The store succeeds against a private copy.
	if err := k.CopyToUser(as, addr, []byte("dirty!")); err != nil {
		t.Fatalf("copy-on-touch store: %v", err)
	}
	if g.Scribbles() != 1 {
		t.Fatalf("Scribbles = %d, want 1", g.Scribbles())
	}
	if k.Stats().GuardCopies != 1 {
		t.Fatalf("GuardCopies = %d, want 1", k.Stats().GuardCopies)
	}

	// The pinned snapshot frame still holds the original bytes.
	fb, err := k.Phys().FrameBytes(pfns[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(fb[:6]) != "frozen" {
		t.Fatalf("snapshot frame holds %q, want %q", fb[:6], "frozen")
	}
	// And the mapping moved off it.
	cur, err := k.ResidentPFN(as, addr)
	if err != nil {
		t.Fatal(err)
	}
	if cur == pfns[0] {
		t.Fatal("mapping still references the snapshot frame")
	}

	if err := k.UnpinUserPages(pfns); err != nil {
		t.Fatal(err)
	}
	if err := k.RestoreWrite(g); err != nil {
		t.Fatal(err)
	}
	if n := k.OrphanFrames(); n != 0 {
		t.Fatalf("OrphanFrames = %d", n)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGuardOverlapAndRestore(t *testing.T) {
	k := smallKernel()
	as := k.CreateProcess("p", false)
	addr := mmapRW(t, k, as, 4)
	if err := k.Touch(as, addr, 4); err != nil {
		t.Fatal(err)
	}

	g1, err := k.RevokeWrite(as, addr, 4, GuardFailFast, nil)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := k.RevokeWrite(as, addr+2*phys.PageSize, 2, GuardFailFast, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Releasing the outer guard leaves the overlap protected.
	if err := k.RestoreWrite(g1); err != nil {
		t.Fatal(err)
	}
	if err := k.CopyToUser(as, addr, []byte("a")); err != nil {
		t.Fatalf("write to released range: %v", err)
	}
	err = k.CopyToUser(as, addr+3*phys.PageSize, []byte("b"))
	if !errors.Is(err, ErrWriteDuringFlight) {
		t.Fatalf("overlapped page: %v, want ErrWriteDuringFlight", err)
	}

	if err := k.RestoreWrite(g2); err != nil {
		t.Fatal(err)
	}
	if err := k.CopyToUser(as, addr+3*phys.PageSize, []byte("b")); err != nil {
		t.Fatalf("write after both released: %v", err)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGuardNonPresentAndSwappedPages(t *testing.T) {
	k := smallKernel()
	as := k.CreateProcess("p", false)

	// Never-touched range: demand-zero under a guard maps read-only.
	addr := mmapRW(t, k, as, 2)
	g, err := k.RevokeWrite(as, addr, 2, GuardFailFast, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1)
	if err := k.CopyFromUser(as, addr, got); err != nil {
		t.Fatalf("demand-zero read under guard: %v", err)
	}
	err = k.CopyToUser(as, addr, []byte("x"))
	if !errors.Is(err, ErrWriteDuringFlight) {
		t.Fatalf("demand-zero write under guard: %v", err)
	}
	if err := k.RestoreWrite(g); err != nil {
		t.Fatal(err)
	}
	if err := k.CopyToUser(as, addr, []byte("x")); err != nil {
		t.Fatalf("write after restore: %v", err)
	}

	// Swapped page: swap-in under a guard obeys the same rules.
	if err := k.CopyToUser(as, addr, []byte("deep")); err != nil {
		t.Fatal(err)
	}
	k.SwapOut(64)
	k.SwapOut(64)
	e, err := k.LookupPTE(as, pgtable.PageOf(addr))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Swapped() {
		t.Skip("page did not swap out; nothing to test")
	}
	g, err = k.RevokeWrite(as, addr, 1, GuardFailFast, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if err := k.CopyFromUser(as, addr, buf); err != nil {
		t.Fatalf("swap-in read under guard: %v", err)
	}
	if string(buf) != "deep" {
		t.Fatalf("swap-in read %q", buf)
	}
	err = k.CopyToUser(as, addr, []byte("y"))
	if !errors.Is(err, ErrWriteDuringFlight) {
		t.Fatalf("swapped-page write under guard: %v", err)
	}
	if err := k.RestoreWrite(g); err != nil {
		t.Fatal(err)
	}
	if err := k.CopyToUser(as, addr, []byte("y")); err != nil {
		t.Fatalf("write after restore: %v", err)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGuardForkDuringFlight(t *testing.T) {
	k := smallKernel()
	as := k.CreateProcess("p", false)
	addr := mmapRW(t, k, as, 1)
	if err := k.CopyToUser(as, addr, []byte("origin")); err != nil {
		t.Fatal(err)
	}
	g, err := k.RevokeWrite(as, addr, 1, GuardFailFast, nil)
	if err != nil {
		t.Fatal(err)
	}
	child, err := k.Fork(as, "child")
	if err != nil {
		t.Fatal(err)
	}
	// The frame is now genuinely COW-shared: restore must NOT re-enable
	// write, or the parent would scribble on the child's view.
	if err := k.RestoreWrite(g); err != nil {
		t.Fatal(err)
	}
	e, err := k.LookupPTE(as, pgtable.PageOf(addr))
	if err != nil {
		t.Fatal(err)
	}
	if e.Writable() {
		t.Fatal("restore re-enabled write on a COW-shared frame")
	}
	// The next parent store must COW, preserving the child's copy.
	if err := k.CopyToUser(as, addr, []byte("parent")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	if err := k.CopyFromUser(child, addr, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "origin" {
		t.Fatalf("child sees %q after parent store", got)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGuardKernelPinTransparency(t *testing.T) {
	k := smallKernel()
	as := k.CreateProcess("p", false)
	addr := mmapRW(t, k, as, 2)
	if err := k.Touch(as, addr, 2); err != nil {
		t.Fatal(err)
	}
	want0, err := k.ResidentPFN(as, addr)
	if err != nil {
		t.Fatal(err)
	}

	g, err := k.RevokeWrite(as, addr, 2, GuardFailFast, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A registration pin of the guarded range must succeed without
	// tripping the guard, resolving to the frozen frames.
	pfns, err := k.PinUserPages(as, addr, 2, true)
	if err != nil {
		t.Fatalf("pin under guard: %v", err)
	}
	if pfns[0] != want0 {
		t.Fatalf("pin resolved pfn %d, want frozen frame %d", pfns[0], want0)
	}
	if g.Scribbles() != 0 {
		t.Fatalf("pin counted as scribble: %d", g.Scribbles())
	}
	// Application stores still fail.
	if err := k.CopyToUser(as, addr, []byte("x")); !errors.Is(err, ErrWriteDuringFlight) {
		t.Fatalf("store under guard after pin: %v", err)
	}
	if err := k.UnpinUserPages(pfns); err != nil {
		t.Fatal(err)
	}
	if err := k.RestoreWrite(g); err != nil {
		t.Fatal(err)
	}
	// The pin held the refcount above 1 during the window; eager restore
	// must still have re-enabled write (pins are not sharers).
	e, err := k.LookupPTE(as, pgtable.PageOf(addr))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Writable() {
		t.Fatal("restore left a sole-owned page read-only")
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDonateAdoptBalance(t *testing.T) {
	k := smallKernel()
	as := k.CreateProcess("p", false)
	addr := mmapRW(t, k, as, 3)
	if err := k.CopyToUser(as, addr, []byte("old data")); err != nil {
		t.Fatal(err)
	}
	free := k.FreePages()

	pfns, err := k.DonateFrames(3)
	if err != nil {
		t.Fatal(err)
	}
	if k.FreePages() != free-3 {
		t.Fatalf("donation took %d frames, want 3", free-k.FreePages())
	}
	// Donated frames are pinned and reserved: reclaim must skip them.
	for _, p := range pfns {
		if k.Phys().Pins(p) == 0 || !k.Phys().TestFlags(p, phys.PGReserved) {
			t.Fatalf("donated frame %d not pinned+reserved", p)
		}
	}
	k.TryToFreePages()

	// Fill a donated frame as the NIC would, then adopt it over the
	// buffer's first page.
	fb, err := k.Phys().FrameBytes(pfns[0])
	if err != nil {
		t.Fatal(err)
	}
	copy(fb, []byte("new data"))
	if err := k.AdoptFrame(as, addr, pfns[0]); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := k.CopyFromUser(as, addr, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "new data" {
		t.Fatalf("after adopt: %q", got)
	}
	cur, err := k.ResidentPFN(as, addr)
	if err != nil {
		t.Fatal(err)
	}
	if cur != pfns[0] {
		t.Fatalf("mapping references %d, want adopted %d", cur, pfns[0])
	}
	if k.Phys().Pins(pfns[0]) != 0 || k.Phys().TestFlags(pfns[0], phys.PGReserved) {
		t.Fatal("adopted frame still pinned or reserved")
	}

	// Adopt over a swapped page: the slot must be released.
	// (Second page of the region; force it out first.)
	k.SwapOut(64)
	k.SwapOut(64)
	if e, _ := k.LookupPTE(as, pgtable.PageOf(addr)+1); e.Swapped() {
		if err := k.AdoptFrame(as, addr+phys.PageSize, pfns[1]); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := k.AdoptFrame(as, addr+phys.PageSize, pfns[1]); err != nil {
			t.Fatal(err)
		}
	}

	// Error taxonomy.
	if err := k.AdoptFrame(as, addr+1, pfns[2]); err == nil {
		t.Fatal("adopt at unaligned address succeeded")
	}
	if err := k.AdoptFrame(as, addr, pfns[0]); err == nil {
		t.Fatal("adopt of a non-donated frame succeeded")
	}
	if err := k.ReleaseDonated(pfns[2:]); err != nil {
		t.Fatal(err)
	}

	if n := k.OrphanFrames(); n != 0 {
		t.Fatalf("OrphanFrames = %d", n)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := k.DestroyProcess(as); err != nil {
		t.Fatal(err)
	}
	if k.FreePages() != k.Config().RAMPages {
		t.Fatalf("teardown left %d free, want %d", k.FreePages(), k.Config().RAMPages)
	}
	if got := k.Stats().FrameDonations; got != 3 {
		t.Fatalf("FrameDonations = %d", got)
	}
	if got := k.Stats().FrameAdopts; got != 2 {
		t.Fatalf("FrameAdopts = %d", got)
	}
}
