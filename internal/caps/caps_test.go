package caps

import "testing"

func TestZeroValueUnprivileged(t *testing.T) {
	var s Set
	if s.Has(IPCLock) || s.Has(SysAdmin) {
		t.Fatal("zero set has capabilities")
	}
}

func TestRootSet(t *testing.T) {
	s := RootSet()
	if !s.Has(IPCLock) || !s.Has(SysAdmin) {
		t.Fatal("root set incomplete")
	}
}

func TestRaiseLower(t *testing.T) {
	var s Set
	s.Raise(IPCLock)
	if !s.Has(IPCLock) {
		t.Fatal("raise failed")
	}
	if s.Has(SysAdmin) {
		t.Fatal("raise leaked into other bit")
	}
	s.Lower(IPCLock)
	if s.Has(IPCLock) {
		t.Fatal("lower failed")
	}
}

func TestLowerIdempotent(t *testing.T) {
	var s Set
	s.Lower(IPCLock)
	s.Lower(IPCLock)
	if s.Has(IPCLock) {
		t.Fatal("impossible state")
	}
}

func TestString(t *testing.T) {
	if IPCLock.String() != "CAP_IPC_LOCK" {
		t.Fatalf("got %q", IPCLock.String())
	}
	if SysAdmin.String() != "CAP_SYS_ADMIN" {
		t.Fatalf("got %q", SysAdmin.String())
	}
	if Capability(1<<9).String() != "CAP(0x200)" {
		t.Fatalf("got %q", Capability(1<<9).String())
	}
}
