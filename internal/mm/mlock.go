package mm

import (
	"errors"
	"fmt"

	"repro/internal/caps"
	"repro/internal/pgtable"
	"repro/internal/vma"
)

// ErrMemlockLimit is ENOMEM from the RLIMIT_MEMLOCK check.
var ErrMemlockLimit = errors.New("mm: locked-memory limit exceeded")

// SetMemlockLimit sets the process's RLIMIT_MEMLOCK in pages
// (0 = unlimited, the boot default in this simulation).
func (k *Kernel) SetMemlockLimit(as *AddressSpace, pages int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	as.memlockLimit = pages
}

// DoMlock locks the pages of [addr, addr+npages pages) into memory by
// setting VM_LOCKED on the covering areas, splitting them at the range
// borders as needed, and faulting every page in (make_pages_present).
// Like the kernel's do_mlock it requires CAP_IPC_LOCK, enforces
// RLIMIT_MEMLOCK, and does NOT nest: one munlock undoes any number of
// mlocks on the range (§3.2).
func (k *Kernel) DoMlock(as *AddressSpace, addr pgtable.VAddr, npages int) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if as.dead {
		return ErrNoProcess
	}
	if !as.caps.Has(caps.IPCLock) {
		return fmt.Errorf("%w: mlock needs %v", ErrPerm, caps.IPCLock)
	}
	if as.memlockLimit > 0 {
		// Worst case: the whole range is newly locked.  (The kernel
		// computes the exact delta; the conservative bound keeps the
		// check simple and errs on the strict side.)
		if as.vmas.LockedPages()+npages > as.memlockLimit {
			return fmt.Errorf("%w: %d locked + %d requested > limit %d",
				ErrMemlockLimit, as.vmas.LockedPages(), npages, as.memlockLimit)
		}
	}
	k.charge(k.costs().KernelCall)
	start := pgtable.PageOf(addr)
	end := start + pgtable.VPN(npages)
	splits, err := as.vmas.SetFlags(start, end, vma.Locked, 0)
	if err != nil {
		return err
	}
	k.chargeN(k.costs().VMAOp, splits+1)
	// make_pages_present: fault everything in while the area is already
	// marked locked, so the pages can never be selected for eviction.
	return k.makePagesPresentLocked(as, addr, npages, false)
}

// DoMunlock clears VM_LOCKED from the range.  No capability is required
// (matching the kernel: munlock only shrinks the locked set).
func (k *Kernel) DoMunlock(as *AddressSpace, addr pgtable.VAddr, npages int) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if as.dead {
		return ErrNoProcess
	}
	k.charge(k.costs().KernelCall)
	start := pgtable.PageOf(addr)
	end := start + pgtable.VPN(npages)
	splits, err := as.vmas.SetFlags(start, end, 0, vma.Locked)
	if err != nil {
		return err
	}
	k.chargeN(k.costs().VMAOp, splits+1)
	return nil
}

// LockedPages reports how many of the process's pages sit in VM_LOCKED
// areas.
func (k *Kernel) LockedPages(as *AddressSpace) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return as.vmas.LockedPages()
}

// RangeLocked reports whether every page of the range lies in a
// VM_LOCKED area.
func (k *Kernel) RangeLocked(as *AddressSpace, addr pgtable.VAddr, npages int) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	start := pgtable.PageOf(addr)
	for i := 0; i < npages; i++ {
		a, ok := as.vmas.Find(start + pgtable.VPN(i))
		if !ok || a.Flags&vma.Locked == 0 {
			return false
		}
	}
	return true
}
