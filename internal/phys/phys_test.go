package phys

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAllFramesFree(t *testing.T) {
	m := New(32)
	if m.NumFrames() != 32 {
		t.Fatalf("NumFrames = %d", m.NumFrames())
	}
	if m.FreeFrames() != 32 {
		t.Fatalf("FreeFrames = %d, want 32", m.FreeFrames())
	}
}

func TestAllocFrameInitialState(t *testing.T) {
	m := New(4)
	pfn, err := m.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.RefCount(pfn); got != 1 {
		t.Errorf("fresh frame refcount %d, want 1", got)
	}
	if got := m.Flags(pfn); got != 0 {
		t.Errorf("fresh frame flags %v, want none", got)
	}
	if got := m.Pins(pfn); got != 0 {
		t.Errorf("fresh frame pins %d, want 0", got)
	}
}

func TestAllocFrameZeroed(t *testing.T) {
	m := New(2)
	pfn, err := m.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WritePhys(pfn.Addr(), []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Put(pfn); err != nil {
		t.Fatal(err)
	}
	// Reallocate (LIFO free list returns the same frame) and check zeroing.
	pfn2, err := m.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if pfn2 != pfn {
		t.Fatalf("expected LIFO reuse of frame %d, got %d", pfn, pfn2)
	}
	buf := make([]byte, 3)
	if err := m.ReadPhys(pfn2.Addr(), buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 || buf[1] != 0 || buf[2] != 0 {
		t.Fatalf("reallocated frame not zeroed: %v", buf)
	}
}

func TestAllocExhaustion(t *testing.T) {
	m := New(3)
	for i := 0; i < 3; i++ {
		if _, err := m.AllocFrame(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.AllocFrame(); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if got := m.Stats().FailedAlloc; got != 1 {
		t.Fatalf("FailedAlloc = %d, want 1", got)
	}
}

func TestGetPutRefcounting(t *testing.T) {
	m := New(2)
	pfn, _ := m.AllocFrame()
	if err := m.Get(pfn); err != nil {
		t.Fatal(err)
	}
	if got := m.RefCount(pfn); got != 2 {
		t.Fatalf("refcount %d, want 2", got)
	}
	freed, err := m.Put(pfn)
	if err != nil || freed {
		t.Fatalf("first put: freed=%v err=%v, want not freed", freed, err)
	}
	freed, err = m.Put(pfn)
	if err != nil || !freed {
		t.Fatalf("second put: freed=%v err=%v, want freed", freed, err)
	}
	if m.FreeFrames() != 2 {
		t.Fatalf("FreeFrames = %d, want 2", m.FreeFrames())
	}
}

func TestPutOrphanedFrameStaysAllocated(t *testing.T) {
	// The paper's core observation: an extra reference keeps the frame
	// allocated after the owner "frees" it — but nothing maps it anymore.
	m := New(2)
	pfn, _ := m.AllocFrame()
	if err := m.Get(pfn); err != nil { // sloppy driver "lock"
		t.Fatal(err)
	}
	if freed, _ := m.Put(pfn); freed { // swap path's __free_page
		t.Fatal("frame freed despite raised count")
	}
	if m.FreeFrames() != 1 {
		t.Fatalf("orphaned frame returned to the free list")
	}
	// The frame must never be handed out again while orphaned.
	pfn2, err := m.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if pfn2 == pfn {
		t.Fatal("allocator reused an orphaned frame")
	}
}

func TestPutOnFreeFrameFails(t *testing.T) {
	m := New(1)
	pfn, _ := m.AllocFrame()
	if _, err := m.Put(pfn); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Put(pfn); !errors.Is(err, ErrFrameFree) {
		t.Fatalf("double free err = %v, want ErrFrameFree", err)
	}
}

func TestGetOnFreeFrameFails(t *testing.T) {
	m := New(1)
	if err := m.Get(0); !errors.Is(err, ErrFrameFree) {
		t.Fatalf("get on free frame err = %v, want ErrFrameFree", err)
	}
}

func TestBadPFN(t *testing.T) {
	m := New(1)
	if err := m.Get(99); !errors.Is(err, ErrBadPFN) {
		t.Fatalf("err = %v, want ErrBadPFN", err)
	}
	if _, err := m.PageInfo(99); !errors.Is(err, ErrBadPFN) {
		t.Fatalf("err = %v, want ErrBadPFN", err)
	}
}

func TestFlags(t *testing.T) {
	m := New(1)
	pfn, _ := m.AllocFrame()
	if err := m.SetFlags(pfn, PGLocked|PGDirty); err != nil {
		t.Fatal(err)
	}
	if !m.TestFlags(pfn, PGLocked) || !m.TestFlags(pfn, PGDirty) {
		t.Fatal("flags not set")
	}
	if m.TestFlags(pfn, PGReserved) {
		t.Fatal("unexpected reserved flag")
	}
	if err := m.ClearFlags(pfn, PGLocked); err != nil {
		t.Fatal(err)
	}
	if m.TestFlags(pfn, PGLocked) {
		t.Fatal("PGLocked still set after clear")
	}
	if !m.TestFlags(pfn, PGDirty) {
		t.Fatal("clear removed unrelated flag")
	}
}

func TestFlagsClearedOnFree(t *testing.T) {
	m := New(1)
	pfn, _ := m.AllocFrame()
	_ = m.SetFlags(pfn, PGDirty|PGReferenced)
	if _, err := m.Put(pfn); err != nil {
		t.Fatal(err)
	}
	pfn2, _ := m.AllocFrame()
	if got := m.Flags(pfn2); got != 0 {
		t.Fatalf("flags survived free/realloc: %v", got)
	}
}

func TestPinUnpin(t *testing.T) {
	m := New(1)
	pfn, _ := m.AllocFrame()
	if err := m.Pin(pfn); err != nil {
		t.Fatal(err)
	}
	if err := m.Pin(pfn); err != nil {
		t.Fatal(err)
	}
	if got := m.Pins(pfn); got != 2 {
		t.Fatalf("pins = %d, want 2", got)
	}
	if err := m.Unpin(pfn); err != nil {
		t.Fatal(err)
	}
	if err := m.Unpin(pfn); err != nil {
		t.Fatal(err)
	}
	if err := m.Unpin(pfn); err == nil {
		t.Fatal("unpin below zero succeeded")
	}
}

func TestPutRefusesFreeingPinnedFrame(t *testing.T) {
	m := New(1)
	pfn, _ := m.AllocFrame()
	if err := m.Pin(pfn); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Put(pfn); err == nil {
		t.Fatal("freeing a pinned frame must fail")
	}
	// The invariant checker must still be satisfied afterwards.
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReclaimable(t *testing.T) {
	m := New(4)
	pfn, _ := m.AllocFrame()
	if !m.Reclaimable(pfn) {
		t.Fatal("plain frame should be reclaimable")
	}
	_ = m.SetFlags(pfn, PGLocked)
	if m.Reclaimable(pfn) {
		t.Fatal("PG_locked frame reclaimable")
	}
	_ = m.ClearFlags(pfn, PGLocked)
	_ = m.SetFlags(pfn, PGReserved)
	if m.Reclaimable(pfn) {
		t.Fatal("PG_reserved frame reclaimable")
	}
	_ = m.ClearFlags(pfn, PGReserved)
	_ = m.Pin(pfn)
	if m.Reclaimable(pfn) {
		t.Fatal("pinned frame reclaimable")
	}
	_ = m.Unpin(pfn)
	if !m.Reclaimable(pfn) {
		t.Fatal("frame should be reclaimable again")
	}
	// Raised refcount does NOT protect a frame (the paper's finding).
	_ = m.Get(pfn)
	if !m.Reclaimable(pfn) {
		t.Fatal("refcount must not make a frame unreclaimable")
	}
}

func TestReadWritePhys(t *testing.T) {
	m := New(2)
	p0, _ := m.AllocFrame()
	p1, _ := m.AllocFrame()
	msg := []byte("dma write across nothing")
	if err := m.WritePhys(p1.Addr()+17, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := m.ReadPhys(p1.Addr()+17, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("read back %q", got)
	}
	// Frame 0 untouched.
	z := make([]byte, 4)
	if err := m.ReadPhys(p0.Addr(), z); err != nil {
		t.Fatal(err)
	}
	for _, b := range z {
		if b != 0 {
			t.Fatal("write leaked into other frame")
		}
	}
}

func TestReadWritePhysBounds(t *testing.T) {
	m := New(1)
	buf := make([]byte, 8)
	if err := m.ReadPhys(Addr(PageSize-4), buf); !errors.Is(err, ErrBadAddr) {
		t.Fatalf("out-of-range read err = %v", err)
	}
	if err := m.WritePhys(Addr(PageSize), buf); !errors.Is(err, ErrBadAddr) {
		t.Fatalf("out-of-range write err = %v", err)
	}
}

func TestCopyPhys(t *testing.T) {
	m := New(2)
	p0, _ := m.AllocFrame()
	p1, _ := m.AllocFrame()
	src := []byte{9, 8, 7, 6}
	if err := m.WritePhys(p0.Addr(), src); err != nil {
		t.Fatal(err)
	}
	if err := m.CopyPhys(p1.Addr()+100, p0.Addr(), 4); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if err := m.ReadPhys(p1.Addr()+100, got); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("copy mismatch at %d: %v", i, got)
		}
	}
}

func TestAddrConversions(t *testing.T) {
	if got := PFN(3).Addr(); got != 3*PageSize {
		t.Fatalf("PFN(3).Addr() = %d", got)
	}
	if got := FrameOf(Addr(3*PageSize + 17)); got != 3 {
		t.Fatalf("FrameOf = %d", got)
	}
}

func TestPageFlagsString(t *testing.T) {
	if got := (PGLocked | PGDirty).String(); got != "locked|dirty" {
		t.Fatalf("flags string = %q", got)
	}
	if got := PageFlags(0).String(); got != "-" {
		t.Fatalf("zero flags string = %q", got)
	}
}

func TestStatsCounting(t *testing.T) {
	m := New(2)
	a, _ := m.AllocFrame()
	b, _ := m.AllocFrame()
	_, _ = m.Put(a)
	_, _ = m.Put(b)
	s := m.Stats()
	if s.Allocs != 2 || s.Frees != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestRandomOpsInvariants drives random alloc/get/put/pin/unpin sequences
// and checks the page-map invariants after every step.
func TestRandomOpsInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(16)
		var live []PFN
		pins := map[PFN]int{}
		for step := 0; step < 300; step++ {
			switch op := rng.Intn(5); {
			case op == 0: // alloc
				if pfn, err := m.AllocFrame(); err == nil {
					live = append(live, pfn)
				}
			case op == 1 && len(live) > 0: // get
				pfn := live[rng.Intn(len(live))]
				if err := m.Get(pfn); err == nil {
					live = append(live, pfn)
				}
			case op == 2 && len(live) > 0: // put
				i := rng.Intn(len(live))
				pfn := live[i]
				// Avoid dropping the last reference of a pinned frame.
				if m.RefCount(pfn) == 1 && pins[pfn] > 0 {
					break
				}
				if _, err := m.Put(pfn); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			case op == 3 && len(live) > 0: // pin
				pfn := live[rng.Intn(len(live))]
				if err := m.Pin(pfn); err == nil {
					pins[pfn]++
				}
			case op == 4: // unpin something pinned
				for pfn, n := range pins {
					if n > 0 {
						if err := m.Unpin(pfn); err != nil {
							return false
						}
						pins[pfn]--
						break
					}
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Logf("invariant violated at step %d: %v", step, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
