// Package msg is a small message-passing library over the VIA stack,
// modelled on the CHEMPI protocols the paper motivates: an eager path
// through pre-registered bounce buffers for short messages, a one-copy
// path that streams chunks from registered user memory into the
// receiver's bounce ring, and a zero-copy rendezvous that registers the
// user buffers on the fly (through the registration cache) and moves the
// payload with a single RDMA write.
//
// Control traffic (the "message info structs" the original keeps in SCI
// shared memory) travels over a per-endpoint control channel and is
// charged wire latency plus a small PIO cost.
package msg

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/mm"
	"repro/internal/phys"
	"repro/internal/proc"
	"repro/internal/regcache"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/via"
	"repro/internal/vipl"
)

// Protocol selects a transfer strategy.
type Protocol string

// The transfer protocols.
const (
	// Eager copies through pre-registered bounce buffers (two copies, no
	// registration on the fast path) — best for short messages.
	Eager Protocol = "eager"
	// OneCopy sends from registered user memory into the receiver's
	// bounce ring (one copy at the receiver).
	OneCopy Protocol = "onecopy"
	// ZeroCopy registers both user buffers and RDMA-writes the payload.
	ZeroCopy Protocol = "zerocopy"
	// Remap is the ownership-transfer protocol (Power's
	// memory-protection zero-copy): the sender revokes write permission
	// on the payload for the transfer's duration — concurrent stores
	// surface as typed ErrWriteDuringFlight or degrade copy-on-touch per
	// Options.ScribblePolicy — and the receiver delivers page-aligned
	// payloads by exchanging kernel-donated staging frames into its page
	// table instead of scatter-copying.  Sub-page payloads and declined
	// grants fall back to the one-copy path, still under the guard.
	Remap Protocol = "remap"
	// ProtectSend is the paper-facing name for Remap.
	ProtectSend = Remap
	// Auto picks a protocol from the message size.
	Auto Protocol = "auto"
)

// ScribblePolicy selects what happens when the application stores to a
// Remap/ProtectSend payload while it is in flight.
type ScribblePolicy uint8

const (
	// ScribbleFail (the default) fails the writer with a typed
	// ErrWriteDuringFlight on the faulting goroutine.
	ScribbleFail ScribblePolicy = iota
	// ScribbleCopy degrades copy-on-touch: the writer gets a private
	// copy of the page and proceeds; the transfer sends the original
	// pinned snapshot.
	ScribbleCopy
)

// Ring geometry: R bounce slots of SlotSize bytes per endpoint.
const (
	// SlotSize is one bounce slot (4 pages).
	SlotSize = 4 * phys.PageSize
	// RingSlots is the number of pre-posted bounce slots.
	RingSlots = 8
)

// Protocol switch points for Auto (tunable; see the crossover bench).
const (
	// EagerMax is the largest message sent eagerly.
	EagerMax = 8 * 1024
	// OneCopyMax is the largest message sent by chunked one-copy.
	OneCopyMax = 128 * 1024
)

// Pipelined-rendezvous defaults.
const (
	// DefaultPipelineChunk is the rendezvous pipeline chunk size.
	DefaultPipelineChunk = 64 * 1024
	// DefaultPipelineDepth double-buffers the pipeline: the next chunk's
	// registration is acquired while the previous chunk's RDMA is in
	// flight.
	DefaultPipelineDepth = 2
)

// Options tunes an endpoint's protocol thresholds and rendezvous
// pipeline.  The zero value of every field selects the default, so
// Options{} is equivalent to passing no options at all.
type Options struct {
	// EagerMax is the largest message Auto sends eagerly (0 = the
	// package-level EagerMax).
	EagerMax int
	// InlineMax is the largest message the eager path sends as one
	// inline descriptor: the payload rides inside the descriptor image —
	// no TPT translation, no gather DMA, no bounce-buffer copy on either
	// side (the NIC delivers straight into the posted receive
	// descriptor).  0 selects via.MaxInlineData; negative disables the
	// inline fast path.  The NIC's own InlineMax attribute is honoured
	// on top of this bound.
	InlineMax int
	// OneCopyMax is the largest message Auto sends by chunked one-copy
	// (0 = the package-level OneCopyMax).
	OneCopyMax int
	// PipelineDepth selects the rendezvous shape: 0 picks
	// DefaultPipelineDepth; a negative depth disables chunking entirely
	// (the serialized legacy rendezvous: whole-buffer registration, one
	// RDMA write); 1 chunks the transfer but keeps registration and
	// transfer strictly serialized (the overlap ablation); >= 2
	// double-buffers, hiding each chunk's registration behind the
	// previous chunk's transfer.  The deterministic lockstep schedule
	// never holds more than two chunks in flight, so depths above 2
	// behave exactly like 2 (DESIGN.md §9).
	PipelineDepth int
	// PipelineChunk is the pipeline chunk size in bytes (0 =
	// DefaultPipelineChunk).
	PipelineChunk int
	// NoPin registers payload buffers pin-free (RegNoPin): the kernel
	// may evict their pages mid-transfer and the NIC recovers through IO
	// page faults.  The endpoint's own ring and bounce buffers stay
	// pinned — they are NIC-owned infrastructure, not user payload.
	NoPin bool
	// RingSlots / SlotBytes size the bounce ring (0 = the package-level
	// RingSlots / SlotSize).  Worlds with thousands of endpoints shrink
	// both to keep the pre-registered footprint O(ranks·log ranks)
	// affordable.
	RingSlots int
	SlotBytes int
	// Mux shares one completion poller across every endpoint created
	// with it: the endpoint's VI delivers completions to the mux's CQ
	// and descriptor waits go through CQMux.WaitDesc instead of each
	// descriptor's own channel — the epoll analogue, O(1) goroutines
	// per world instead of per VI.
	Mux *via.CQMux
	// SharedCache, when non-nil, replaces the endpoint's private
	// registration cache: all endpoints of one rank share it, so a
	// buffer registered for one peer is a cache hit when sent to the
	// next (the cross-iteration reuse MPICH2 builds on).
	SharedCache *regcache.Cache
	// RDMAEager switches the inline protocols to the MPICH2 RDMA-write
	// fast path: the sender writes each chunk directly into the peer's
	// pre-registered ring slot with an RDMA write and the receiver
	// polls the slot instead of posting receive descriptors — no
	// receive-descriptor matching, no repost doorbells, no
	// receiver-side DMA startup on the critical path.
	RDMAEager bool
	// RecvTimeout bounds how long Recv blocks waiting for the next
	// control announcement (0 = block forever, the default).  A timed
	// out Recv returns ErrRecvTimeout without consuming anything; the
	// endpoint stays usable.  Collective layers use this to detect a
	// dead partner and run their own abort protocol instead of hanging.
	RecvTimeout time.Duration
	// ScribblePolicy selects the Remap/ProtectSend write-guard policy:
	// ScribbleFail (default) fails a concurrent writer with
	// ErrWriteDuringFlight; ScribbleCopy degrades copy-on-touch.
	ScribblePolicy ScribblePolicy
}

// payloadAttrs builds the registration attributes for user payload
// buffers, honouring the endpoint's pin-free option.
func (e *Endpoint) payloadAttrs(rdmaWrite bool) via.MemAttrs {
	return via.MemAttrs{EnableRDMAWrite: rdmaWrite, NoPin: e.opts.NoPin}
}

// withDefaults fills zero fields with the package defaults.
func (o Options) withDefaults() Options {
	if o.EagerMax == 0 {
		o.EagerMax = EagerMax
	}
	if o.InlineMax == 0 {
		o.InlineMax = via.MaxInlineData
	} else if o.InlineMax < 0 {
		o.InlineMax = 0
	}
	if o.OneCopyMax == 0 {
		o.OneCopyMax = OneCopyMax
	}
	if o.PipelineDepth == 0 {
		o.PipelineDepth = DefaultPipelineDepth
	}
	if o.PipelineChunk == 0 {
		o.PipelineChunk = DefaultPipelineChunk
	}
	if o.RingSlots <= 0 {
		o.RingSlots = RingSlots
	}
	if o.SlotBytes <= 0 {
		o.SlotBytes = SlotSize
	}
	return o
}

// Stats counts endpoint activity.
type Stats struct {
	SentMsgs   uint64
	SentBytes  uint64
	RecvMsgs   uint64
	RecvBytes  uint64
	EagerSends uint64
	// InlineSends counts eager sends that took the inline-descriptor
	// fast path (a subset of EagerSends).
	InlineSends uint64
	OneCopies   uint64
	ZeroCopies  uint64
	// PipelinedSends counts zero-copy sends that ran the pipelined
	// rendezvous; PipelineChunks the chunks they moved.
	PipelinedSends uint64
	PipelineChunks uint64
	// PipelineFallbacks counts pipelined rendezvous that degraded to the
	// one-copy path after a chunk registration fault.
	PipelineFallbacks uint64
	// Remap protocol activity: RemapSends/RemapRecvs count completed
	// ownership-transfer messages, RemapPages the frames exchanged into
	// the receiver's page table, RemapTailBytes the unaligned tail bytes
	// that fell back to a copy, and RemapFallbacks the sends the
	// receiver declined (degraded to one-copy under the guard).
	RemapSends     uint64
	RemapRecvs     uint64
	RemapPages     uint64
	RemapTailBytes uint64
	RemapFallbacks uint64
	// ScribbleFaults counts application stores caught against in-flight
	// ProtectSend payloads (either policy).
	ScribbleFaults uint64
}

// Errors returned by endpoints.
var (
	ErrEmptyMessage = errors.New("msg: empty message")
	ErrTooSmall     = errors.New("msg: receive buffer smaller than message")
	ErrNotPaired    = errors.New("msg: endpoint not paired")
	// ErrTransport marks a failure of the underlying VI connection (a
	// faulted chunk, a flushed ring slot, a post refused by the error
	// state).  With reliability enabled these are retried; without, they
	// surface to the caller.
	ErrTransport = errors.New("msg: transport failure")
	// ErrRetriesExhausted reports a reliable send that failed every
	// attempt; the peer is told to stop waiting via kAbort.
	ErrRetriesExhausted = errors.New("msg: retries exhausted")
	// ErrPeerAborted reports that the peer gave up on a reliable
	// transfer after exhausting its retries.
	ErrPeerAborted = errors.New("msg: peer aborted transfer")
	// ErrRecvTimeout reports that Recv waited longer than the
	// endpoint's RecvTimeout for the next message announcement.
	ErrRecvTimeout = errors.New("msg: receive timed out")
	// ErrWriteDuringFlight is mm.ErrWriteDuringFlight re-exported: the
	// typed error a goroutine storing to an in-flight ProtectSend
	// payload observes under the fail-fast scribble policy.
	ErrWriteDuringFlight = mm.ErrWriteDuringFlight
)

type ctrlKind uint8

const (
	kInline     ctrlKind = iota // eager/one-copy announcement
	kRTS                        // zero-copy request to send
	kCTS                        // zero-copy clear to send (carries handle)
	kFin                        // zero-copy completion
	kReset                      // reliability: sender starts connection recovery
	kResetAck                   // reliability: receiver has reset its VI
	kRingRepost                 // reliability: connection is back, repost your ring
	kAbort                      // reliability: sender gave up, stop waiting
	kDone                       // reliability: receiver delivered the sequence number
	kChunkGrant                 // pipelined rendezvous: one chunk's remote handle
	kChunkFin                   // pipelined rendezvous: one chunk's RDMA completed
	kRndvAbort                  // pipelined rendezvous: unwind, sender degrades
	kRemapRTS                   // remap: request to send (carries size)
	kRemapGrant                 // remap: staged-frame region handle
	kRemapNak                   // remap: receiver declines, sender degrades
	kRemapFin                   // remap: payload landed in the staged frames
	kRemapAbort                 // remap: sender's RDMA failed, release staging
)

type ctrlMsg struct {
	kind    ctrlKind
	size    int
	nchunks int
	handle  via.MemHandle
	// seq numbers reliable messages so a retransmit after a dropped
	// completion (data delivered, sender unsure) is detected and
	// discarded by the receiver instead of delivered twice.
	seq uint64
	// Pipelined rendezvous fields: chunk is the pipeline chunk size
	// (carried by the RTS), idx the chunk index, offset the byte offset
	// within the granted region the chunk lands at, and cost the
	// sim-time the peer spent on the operation the message reports —
	// the other side's overlap accounting rewinds by it (DESIGN.md §9).
	chunk  int
	idx    int
	offset int
	cost   simtime.Duration
}

// ctrlBytes approximates the size of one control struct on the wire.
const ctrlBytes = 64

// Endpoint is one end of a paired message channel.  An endpoint is not
// safe for concurrent use: one goroutine may call Send and one other may
// concurrently be in Recv on the PEER, but a single endpoint's methods
// must not be called concurrently.
type Endpoint struct {
	name  string
	nic   *vipl.Nic
	vi    *via.VI
	cache *regcache.Cache
	meter *simtime.Meter

	peer *Endpoint
	nw   *via.Network // set by Pair; recovery reconnects through it
	ctrl chan ctrlMsg
	// rctrl carries the reliability traffic (handshake and delivery
	// acks) out of band from the data announcements, so a sender waiting
	// for a kResetAck or kDone never consumes a message meant for Recv.
	rctrl chan ctrlMsg
	// credits gate this endpoint's inline sends: one token per free
	// receive slot at the peer.  The peer refills it after reposting.
	credits chan struct{}

	// obs is the attached observer (set through AttachObs, nil in
	// production).
	obs atomic.Pointer[epObs]

	// urgent is the out-of-band token sink fed by the peer's Notify
	// (nil unless SetUrgentSink was called).
	urgent atomic.Pointer[func(uint64)]

	// Reliability layer (nil unless EnableReliability was called).
	rel           *relState
	nextSeq       uint64 // last sequence number this side assigned
	lastDelivered uint64 // highest sequence delivered to the application

	// bounce ring (receive side) and one send bounce slot.  ringSlots
	// and slotSize are the per-endpoint geometry (Options, defaulted).
	ringBuf   *proc.Buffer
	ringReg   *vipl.MemRegion
	ringDescs []*via.Descriptor
	ringSlots int
	slotSize  int
	rxIdx     uint64

	// RDMA-eager state: the peer's ring handle (RDMA-write target),
	// the sender-side slot cursor, and the flag-poll channel — the
	// sender raises a token when a chunk's RDMA write has landed in
	// the peer's ring (the receiver's poll on the slot's dirty flag; a
	// negative token poisons the in-flight message after a fault).
	peerRing  via.MemHandle
	txIdx     uint64
	rdmaReady chan int

	sendBuf *proc.Buffer
	sendReg *vipl.MemRegion

	// Inline fast-path state: one reusable send descriptor plus its
	// staging bytes (the payload is copied once, into the descriptor
	// image), so steady-state inline sends allocate nothing.
	inlineDesc *via.Descriptor
	inlineTmp  []byte

	// Batched-repost scratch: slot indices accumulated by recvInline and
	// the descriptor slice handed to PostRecvBatch.  Reused so the
	// receive path does not allocate per flush.
	repostSlots []int
	repostDescs []*via.Descriptor

	opts  Options
	stats Stats

	// scribbles counts guarded write faults against this endpoint's
	// in-flight ProtectSend payloads.  It is atomic because the guard
	// callback runs on the faulting (application) goroutine, not the
	// sender's.
	scribbles atomic.Uint64
}

// NewEndpoint builds an endpoint for a process on its NIC handle.
// cacheRegions bounds the registration cache (0 = unbounded).  At most
// one Options value may follow; omitted (or zero) fields keep the
// package defaults.
func NewEndpoint(name string, nic *vipl.Nic, meter *simtime.Meter, cacheRegions int, opts ...Options) (*Endpoint, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	o = o.withDefaults()
	e := &Endpoint{
		name:      name,
		nic:       nic,
		meter:     meter,
		opts:      o,
		ctrl:      make(chan ctrlMsg, 4*o.RingSlots),
		rctrl:     make(chan ctrlMsg, 4*o.RingSlots),
		credits:   make(chan struct{}, o.RingSlots),
		ringSlots: o.RingSlots,
		slotSize:  o.SlotBytes,
		ringDescs: make([]*via.Descriptor, o.RingSlots),
	}
	if o.SharedCache != nil {
		e.cache = o.SharedCache
	} else {
		e.cache = regcache.New(nic, cacheRegions)
	}
	if o.RDMAEager {
		e.rdmaReady = make(chan int, 4*o.RingSlots)
	}
	var err error
	if o.Mux != nil {
		e.vi, err = nic.CreateViCQ(o.Mux.CQ())
	} else {
		e.vi, err = nic.CreateVi()
	}
	if err != nil {
		return nil, err
	}
	if e.ringBuf, err = nic.Process().Malloc(e.ringSlots * e.slotSize); err != nil {
		return nil, err
	}
	// In RDMA-eager mode the ring is the peer's RDMA-write target.
	if e.ringReg, err = nic.RegisterMem(e.ringBuf, via.MemAttrs{EnableRDMAWrite: o.RDMAEager}); err != nil {
		return nil, err
	}
	if e.sendBuf, err = nic.Process().Malloc(e.slotSize); err != nil {
		return nil, err
	}
	if e.sendReg, err = nic.RegisterMem(e.sendBuf, via.MemAttrs{}); err != nil {
		return nil, err
	}
	return e, nil
}

// Pair connects two endpoints over the fabric and pre-posts both bounce
// rings.
func Pair(nw *via.Network, a, b *Endpoint) error {
	if err := nw.Connect(a.vi, b.vi); err != nil {
		return err
	}
	a.peer, b.peer = b, a
	a.nw, b.nw = nw, nw
	a.peerRing, b.peerRing = b.ringReg.Handle(), a.ringReg.Handle()
	for _, e := range []*Endpoint{a, b} {
		// One batched post covers the whole ring (RDMA-eager rings take
		// writes directly — repostRing just grants the credits there).
		if err := e.repostRing(); err != nil {
			return err
		}
	}
	return nil
}

// peerGrantCredit refills one send credit at the peer.
func (e *Endpoint) peerGrantCredit() {
	e.peer.credits <- struct{}{}
}

// postSlot (re)posts the ring slot's receive descriptor.
func (e *Endpoint) postSlot(slot int) error {
	if old := e.ringDescs[slot]; old != nil && e.opts.Mux != nil {
		e.opts.Mux.Forget(old)
	}
	d := via.NewDescriptor(via.OpRecv, e.ringReg.Seg(slot*e.slotSize, e.slotSize))
	e.ringDescs[slot] = d
	return e.vi.PostRecv(d)
}

// waitDesc waits for a descriptor's completion: through the shared
// poller when the endpoint is mux-attached, directly otherwise.
func (e *Endpoint) waitDesc(d *via.Descriptor) via.Status {
	if e.opts.Mux != nil {
		return e.opts.Mux.WaitDesc(d)
	}
	return d.Wait()
}

// rdmaToken signals the peer that one RDMA-eager chunk landed in its
// ring (n = byte count), or poisons the in-flight message (n < 0) so a
// receiver blocked on the slot flag observes the fault and falls into
// the recovery path.
func (e *Endpoint) rdmaToken(n int) {
	e.peer.rdmaReady <- n
}

// drainRdmaReady discards leftover slot tokens from a sender's failed
// attempts (recovery resets both cursors to slot zero).
func (e *Endpoint) drainRdmaReady() {
	if e.rdmaReady == nil {
		return
	}
	for {
		select {
		case <-e.rdmaReady:
		default:
			return
		}
	}
}

// SetUrgentSink registers a callback for urgent tokens delivered by
// the peer's Notify.  The sink runs on the notifier's goroutine, so it
// must be safe for concurrent use (an atomic flag, typically).
func (e *Endpoint) SetUrgentSink(fn func(uint64)) {
	e.urgent.Store(&fn)
}

// Notify rings the peer's urgent doorbell with a token, out of band
// from the data path: no credits, no ring slots, no blocking — the
// control channel analogue of VIA's connection notify.  Collective
// layers use it to cascade aborts without deadlocking against a
// clogged ring.  The token is dropped if the peer has no sink.
func (e *Endpoint) Notify(tok uint64) error {
	if e.peer == nil {
		return ErrNotPaired
	}
	e.meter.Charge(e.meter.Costs.WireLatency)
	if fn := e.peer.urgent.Load(); fn != nil {
		(*fn)(tok)
	}
	return nil
}

// sendCtrl delivers a control struct to the peer, charging the PIO
// write, the wire crossing and the peer's polling-detection delay.
// Reliability traffic rides the out-of-band rctrl channel; delivery
// acks are best-effort (dropped if the peer never drains them — the
// sender's ack wait then falls back to the recovery handshake).
func (e *Endpoint) sendCtrl(m ctrlMsg) {
	e.meter.Charge(e.meter.Costs.WireLatency + e.meter.Costs.SyncDetect)
	e.meter.ChargeN(e.meter.Costs.PIOPerByte, ctrlBytes)
	switch m.kind {
	case kReset, kResetAck, kRingRepost, kAbort:
		e.peer.rctrl <- m
	case kDone:
		select {
		case e.peer.rctrl <- m:
		default:
		}
	default:
		e.peer.ctrl <- m
	}
}

// Stats returns a snapshot of endpoint statistics.
func (e *Endpoint) Stats() Stats {
	s := e.stats
	s.ScribbleFaults = e.scribbles.Load()
	return s
}

// Cache exposes the registration cache (for stats and flushing).
func (e *Endpoint) Cache() *regcache.Cache { return e.cache }

// Process returns the endpoint's owning process (for buffer allocation).
func (e *Endpoint) Process() *proc.Process { return e.nic.Process() }

// VI exposes the endpoint's virtual interface (diagnostics).
func (e *Endpoint) VI() *via.VI { return e.vi }

// Choose maps a message size to the protocol Auto would use under the
// default thresholds.
func Choose(size int) Protocol {
	return Options{}.withDefaults().Choose(size)
}

// Choose maps a message size to the protocol Auto would use under these
// (default-filled) options.
func (o Options) Choose(size int) Protocol {
	switch {
	case size <= o.EagerMax:
		return Eager
	case size <= o.OneCopyMax:
		return OneCopy
	default:
		return ZeroCopy
	}
}

// Send transmits the whole buffer with the given protocol and returns
// the byte count.
func (e *Endpoint) Send(b *proc.Buffer, p Protocol) (int, error) {
	if e.peer == nil {
		return 0, ErrNotPaired
	}
	if b.Bytes <= 0 {
		return 0, ErrEmptyMessage
	}
	if p == Auto || p == "" {
		p = e.opts.Choose(b.Bytes)
	}
	switch p {
	case Eager:
		return e.sendReliable(b, true)
	case OneCopy:
		return e.sendReliable(b, false)
	case ZeroCopy:
		return e.sendZeroCopy(b)
	case Remap:
		return e.sendRemap(b)
	default:
		return 0, fmt.Errorf("msg: unknown protocol %q", p)
	}
}

// nextCtrl blocks for the next control announcement, servicing the
// out-of-band reliability channel when enabled and honouring the
// endpoint's RecvTimeout.  The timer only exists when a timeout is
// configured; the nil channel arm never fires otherwise.
func (e *Endpoint) nextCtrl() (ctrlMsg, error) {
	var timeout <-chan time.Time
	if e.opts.RecvTimeout > 0 {
		t := time.NewTimer(e.opts.RecvTimeout)
		defer t.Stop()
		timeout = t.C
	}
	var m ctrlMsg
	if e.rel != nil {
		// Reliability traffic (handshake, aborts) arrives out of band
		// so it can be serviced even while data announcements queue.
		select {
		case m = <-e.ctrl:
		case m = <-e.rctrl:
		case <-timeout:
			return ctrlMsg{}, ErrRecvTimeout
		}
	} else {
		select {
		case m = <-e.ctrl:
		case <-timeout:
			return ctrlMsg{}, ErrRecvTimeout
		}
	}
	return m, nil
}

// Recv receives one message into the buffer and returns its length.
// With reliability enabled it also services the recovery handshake and
// discards retransmitted duplicates of already-delivered messages.
func (e *Endpoint) Recv(b *proc.Buffer) (int, error) {
	if e.peer == nil {
		return 0, ErrNotPaired
	}
	for {
		m, err := e.nextCtrl()
		if err != nil {
			return 0, err
		}
		switch m.kind {
		case kInline:
			if e.rel != nil && m.seq > 0 && m.seq <= e.lastDelivered {
				// Retransmit of a message that already reached the
				// application (the sender's completion was dropped): drain
				// the chunks to keep credits flowing, deliver nothing —
				// but do re-acknowledge the delivery.
				if err := e.drainDuplicate(m); err != nil {
					if !isTransport(err) {
						return 0, err
					}
					continue
				}
				e.sendCtrl(ctrlMsg{kind: kDone, seq: m.seq})
				continue
			}
			n, err := e.recvInline(b, m)
			if err != nil && e.rel != nil && isTransport(err) {
				// The connection died mid-message.  The sender drives
				// recovery and will retransmit; wait for its kReset.
				continue
			}
			if err == nil && e.rel != nil {
				e.lastDelivered = m.seq
				// Delivery ack: lets a sender whose final completion was
				// lost confirm the payload arrived without a retransmit.
				e.sendCtrl(ctrlMsg{kind: kDone, seq: m.seq})
			}
			return n, err
		case kRTS:
			n, err := e.recvZeroCopy(b, m)
			if errors.Is(err, errRndvAborted) {
				// The pipelined rendezvous unwound after a chunk
				// registration fault; the sender degrades to the one-copy
				// path, whose announcement arrives next.  Keep receiving.
				continue
			}
			return n, err
		case kRemapRTS:
			n, err := e.recvRemap(b, m)
			if errors.Is(err, errRemapDegraded) {
				// This side declined to stage frames; the sender degrades
				// to the one-copy path, whose announcement arrives next.
				continue
			}
			return n, err
		case kReset:
			if e.rel == nil {
				return 0, fmt.Errorf("msg: unexpected control message kind %d", m.kind)
			}
			if err := e.handlePeerReset(); err != nil {
				return 0, err
			}
			continue
		case kAbort:
			// The announcements of the peer's failed attempts are now
			// stale; drop them so they cannot alias a later message.
			e.drainStaleData()
			return 0, ErrPeerAborted
		case kDone:
			// Stale delivery ack from this endpoint's earlier role as a
			// sender; drop it.
			continue
		default:
			return 0, fmt.Errorf("msg: unexpected control message kind %d", m.kind)
		}
	}
}

// sendInline implements both eager (with the extra sender copy) and
// one-copy (sending straight from registered user memory).  seq is the
// reliability sequence number (0 when reliability is off).
func (e *Endpoint) sendInline(b *proc.Buffer, eager bool, seq uint64) (int, error) {
	size := b.Bytes
	if eager && !e.opts.RDMAEager && size <= e.opts.InlineMax &&
		size <= e.vi.NIC().InlineMax() {
		return e.sendInlineDesc(b, seq)
	}
	nchunks := (size + e.slotSize - 1) / e.slotSize
	rdma := e.opts.RDMAEager

	// Acquire the registration before announcing the message: a
	// registration failure must leave no receiver-visible state, so the
	// caller can degrade (e.g. retry eagerly) without stranding the peer
	// waiting for chunks that will never arrive.
	var reg *vipl.MemRegion
	if !eager {
		var err error
		reg, err = e.cache.Acquire(b, 0, size, e.payloadAttrs(false), regcache.ClassUser)
		if err != nil {
			return 0, err
		}
		defer func() { _ = e.cache.Release(reg) }()
	}
	e.sendCtrl(ctrlMsg{kind: kInline, size: size, nchunks: nchunks, seq: seq})

	sent := 0
	tmp := make([]byte, e.slotSize)
	for c := 0; c < nchunks; c++ {
		n := size - sent
		if n > e.slotSize {
			n = e.slotSize
		}
		<-e.credits
		var src via.Segment
		if eager {
			// Copy the chunk into the registered send bounce.
			if err := b.Read(sent, tmp[:n]); err != nil {
				return sent, err
			}
			if err := e.sendBuf.Write(0, tmp[:n]); err != nil {
				return sent, err
			}
			e.meter.ChargeN(e.meter.Costs.PageCopy, (n+phys.PageSize-1)/phys.PageSize)
			src = e.sendReg.Seg(0, n)
		} else {
			src = reg.Seg(sent, n)
		}
		var d *via.Descriptor
		if rdma {
			// MPICH2 RDMA-write fast path: write the chunk straight
			// into the peer's next ring slot; the receiver polls the
			// slot flag instead of matching a receive descriptor.
			slot := int(e.txIdx % uint64(e.ringSlots))
			d = via.NewDescriptor(via.OpRDMAWrite, src)
			d.Remote = via.RemoteSegment{Handle: e.peerRing, Offset: slot * e.slotSize}
		} else {
			d = via.NewDescriptor(via.OpSend, src)
		}
		if err := e.vi.PostSend(d); err != nil {
			if rdma {
				e.rdmaToken(-1)
			}
			return sent, err
		}
		if st := e.waitChunk(d); st != via.StatusSuccess {
			if rdma {
				// A lost completion still placed the data (the write
				// precedes the completion write-back), so the slot flag
				// is genuinely set; anything else poisons the message.
				if st == via.StatusCompletionLost {
					e.txIdx++
					e.rdmaToken(n)
				} else {
					e.rdmaToken(-1)
				}
			}
			return sent, &chunkError{chunk: c, nchunks: nchunks, status: st}
		}
		if rdma {
			e.txIdx++
			e.rdmaToken(n)
		}
		sent += n
	}
	e.stats.SentMsgs++
	e.stats.SentBytes += uint64(sent)
	if eager {
		e.stats.EagerSends++
	} else {
		e.stats.OneCopies++
	}
	return sent, nil
}

// sendInlineDesc is the small-message fast path: the whole payload is
// copied once, into the image of a reusable send descriptor, and the
// NIC delivers it straight into the peer's posted ring descriptor — no
// TPT translation, no gather/scatter DMA, no bounce-slot traffic on
// either side.  Credits and sequence numbering are identical to the
// chunked eager path, so reliability retransmits and dedup work
// unchanged.
func (e *Endpoint) sendInlineDesc(b *proc.Buffer, seq uint64) (int, error) {
	size := b.Bytes
	e.sendCtrl(ctrlMsg{kind: kInline, size: size, nchunks: 1, seq: seq})
	<-e.credits
	d := e.inlineSendDesc()
	if err := b.Read(0, e.inlineTmp[:size]); err != nil {
		e.inlineDesc = nil // never posted: cannot Reset for reuse
		return 0, err
	}
	if err := d.SetInline(e.inlineTmp[:size]); err != nil {
		e.inlineDesc = nil
		return 0, err
	}
	if err := e.vi.PostSend(d); err != nil {
		e.inlineDesc = nil
		return 0, err
	}
	if st := e.waitChunk(d); st != via.StatusSuccess {
		return 0, &chunkError{chunk: 0, nchunks: 1, status: st}
	}
	e.stats.SentMsgs++
	e.stats.SentBytes += uint64(size)
	e.stats.EagerSends++
	e.stats.InlineSends++
	return size, nil
}

// inlineSendDesc returns the endpoint's reusable inline send
// descriptor, re-armed for the next post.
func (e *Endpoint) inlineSendDesc() *via.Descriptor {
	if e.inlineDesc == nil {
		e.inlineDesc = via.NewDescriptor(via.OpSend)
		e.inlineTmp = make([]byte, via.MaxInlineData)
	} else {
		e.inlineDesc.Reset()
	}
	return e.inlineDesc
}

// recvInline drains nchunks ring slots into the user buffer.  Consumed
// slots are reposted in batches (one doorbell per flush instead of one
// per slot); credits are granted only after their slots are back on the
// queue, so the sender can never hit an unposted ring.  The flush
// threshold is at most half the ring, so the withheld credits can never
// stall a sender longer than the receiver's next flush.
func (e *Endpoint) recvInline(b *proc.Buffer, m ctrlMsg) (int, error) {
	if m.size > b.Bytes {
		return 0, fmt.Errorf("%w: message %d, buffer %d", ErrTooSmall, m.size, b.Bytes)
	}
	got := 0
	tmp := make([]byte, e.slotSize)
	threshold := e.ringSlots / 2
	if threshold < 1 {
		threshold = 1
	}
	e.repostSlots = e.repostSlots[:0]
	for c := 0; c < m.nchunks; c++ {
		slot := int(e.rxIdx % uint64(e.ringSlots))
		var n int
		var inline []byte
		if e.opts.RDMAEager {
			// Poll the slot's dirty flag: the token arrives once the
			// sender's RDMA write has landed; a poison token means the
			// write faulted and the sender is starting recovery.
			tok := <-e.rdmaReady
			if tok < 0 {
				return got, fmt.Errorf("%w: rdma-eager slot %d poisoned", ErrTransport, slot)
			}
			e.meter.Charge(e.meter.Costs.SyncDetect)
			n = tok
		} else {
			d := e.ringDescs[slot]
			if st := e.waitDesc(d); st != via.StatusSuccess {
				return got, fmt.Errorf("%w: ring slot %d failed: %v", ErrTransport, slot, st)
			}
			n = d.Transferred
			inline = d.Inline()
		}
		if inline != nil {
			// Inline delivery: the payload landed in the descriptor
			// image, not the ring slot.  Copy it out directly — a
			// programmed-I/O read of at most MaxInlineData bytes, no
			// page-sized scatter pass.
			if err := b.Write(got, inline); err != nil {
				return got, err
			}
			e.meter.ChargeN(e.meter.Costs.PIOPerByte, n)
		} else {
			if err := e.ringBuf.Read(slot*e.slotSize, tmp[:n]); err != nil {
				return got, err
			}
			if err := b.Write(got, tmp[:n]); err != nil {
				return got, err
			}
			e.meter.ChargeN(e.meter.Costs.PageCopy, (n+phys.PageSize-1)/phys.PageSize)
		}
		got += n
		e.rxIdx++
		if e.opts.RDMAEager {
			e.peerGrantCredit()
			continue
		}
		e.repostSlots = append(e.repostSlots, slot)
		if len(e.repostSlots) >= threshold {
			if err := e.flushReposts(); err != nil {
				if isTransport(err) && got == m.size {
					// Every chunk landed; only the repost hit the dying
					// connection.  The message is complete — deliver it
					// rather than drop received data.  With reliability on,
					// ring and credits are rebuilt by the recovery handshake
					// and the sender's retransmit (it saw the fault) is
					// discarded by sequence dedup; with it off (a stripe
					// rail), the connection is dead until an explicit reset
					// rebuilds the ring anyway.
					break
				}
				return got, err
			}
		}
	}
	if !e.opts.RDMAEager && len(e.repostSlots) > 0 {
		if err := e.flushReposts(); err != nil && !(isTransport(err) && got == m.size) {
			return got, err
		}
	}
	e.stats.RecvMsgs++
	e.stats.RecvBytes += uint64(got)
	return got, nil
}

// flushReposts reposts the accumulated ring slots with one batched
// doorbell and grants the matching credits.  The pending list is
// cleared whether or not the post succeeds (a failed batch is rebuilt
// from scratch by the recovery handshake's repostRing).
func (e *Endpoint) flushReposts() error {
	if len(e.repostSlots) == 0 {
		return nil
	}
	e.repostDescs = e.repostDescs[:0]
	for _, slot := range e.repostSlots {
		if old := e.ringDescs[slot]; old != nil && e.opts.Mux != nil {
			e.opts.Mux.Forget(old)
		}
		d := via.NewDescriptor(via.OpRecv, e.ringReg.Seg(slot*e.slotSize, e.slotSize))
		e.ringDescs[slot] = d
		e.repostDescs = append(e.repostDescs, d)
	}
	n := len(e.repostSlots)
	e.repostSlots = e.repostSlots[:0]
	if err := e.vi.PostRecvBatch(e.repostDescs); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		e.peerGrantCredit()
	}
	return nil
}

// errRndvAborted is the internal signal that a pipelined rendezvous was
// unwound after a chunk registration fault.  The sender turns it into a
// one-copy fallback; the receiver's Recv loop keeps receiving, expecting
// that fallback's announcement.
var errRndvAborted = errors.New("msg: pipelined rendezvous aborted")

// sendZeroCopy implements the rendezvous.  With a non-negative pipeline
// depth and a buffer spanning multiple chunks it runs the pipelined
// protocol (sendPipelined); otherwise the legacy serialized form:
// acquire the whole-buffer registration, RTS, wait for CTS carrying the
// receiver's handle, one RDMA write, Fin.
func (e *Endpoint) sendZeroCopy(b *proc.Buffer) (int, error) {
	chunk := e.opts.PipelineChunk
	nchunks := (b.Bytes + chunk - 1) / chunk
	if e.opts.PipelineDepth < 0 || nchunks <= 1 {
		reg, err := e.cache.Acquire(b, 0, b.Bytes, e.payloadAttrs(false), regcache.ClassUser)
		if err != nil {
			return 0, err
		}
		defer func() { _ = e.cache.Release(reg) }()
		return e.sendZeroCopyReg(b, reg)
	}
	n, err := e.sendPipelined(b, chunk, nchunks)
	if errors.Is(err, errRndvAborted) {
		// A chunk registration faulted mid-pipeline (on either side) and
		// both sides have unwound their chunk registrations.  Degrade to
		// the one-copy path: it needs no receiver-side registration and
		// rides the reliability layer's retries.
		e.stats.PipelineFallbacks++
		if obs := e.obs.Load(); obs != nil {
			obs.event(trace.KindPipeFallback, uint64(b.Bytes), uint64(nchunks))
		}
		return e.sendReliable(b, false)
	}
	return n, err
}

// sendPipelined is the pipelined rendezvous send (DESIGN.md §9): the
// buffer moves as nchunks chunks, and while chunk i's RDMA write is in
// flight the receiver acquires chunk i+1's registration — the sender
// acquires its own upon the grant.  The shared virtual clock is a
// total-work meter, so the overlap is modelled explicitly: each side
// rewinds by the cost the incoming control message reports (the work
// the peer did "during" the same window), times its own work, and the
// sender closes every window by charging the deficit up to
// max(transfer, peer registration, own registration).  Trace spans
// (KindChunkXfer / KindChunkReg) carry the rewound timestamps, so an
// exported trace shows chunk i+1's registrations overlapping chunk i's
// transfer.
//
// With PipelineDepth 1 the same chunked message flow runs strictly
// serialized: no rewinds, no deficit — the ablation E19 compares
// against.
func (e *Endpoint) sendPipelined(b *proc.Buffer, chunk, nchunks int) (int, error) {
	size := b.Bytes
	overlap := e.opts.PipelineDepth >= 2
	e.sendCtrl(ctrlMsg{kind: kRTS, size: size, nchunks: nchunks, chunk: chunk})

	var (
		reg      *vipl.MemRegion
		sent     int
		prevXfer simtime.Duration
	)
	defer func() {
		if reg != nil {
			_ = e.cache.Release(reg)
		}
	}()

	for i := 0; i < nchunks; i++ {
		g, err := e.awaitGrant(i)
		if err != nil {
			return sent, err
		}
		off := i * chunk
		n := min(chunk, size-off)

		// Overlap window: the receiver's registration (g.cost) and the
		// previous chunk's transfer (prevXfer) were concurrent with the
		// acquire below; rewind to the window start, do the acquire, then
		// close the window at the maximum of the three costs.
		if overlap {
			e.meter.Retreat(g.cost)
		}
		obs, sp := e.chunkSpanBegin(trace.KindChunkReg, i, n)
		sw := e.meter.Start()
		creg, err := e.cache.Acquire(b, off, n, e.payloadAttrs(false), regcache.ClassUser)
		regCost := sw.Elapsed()
		e.chunkSpanEnd(obs, sp, trace.KindChunkReg, err == nil, i)
		if err != nil {
			e.sendCtrl(ctrlMsg{kind: kRndvAbort, idx: i})
			return sent, fmt.Errorf("%w: chunk %d registration: %w", errRndvAborted, i, err)
		}
		if overlap {
			if d := maxDur(prevXfer, g.cost, regCost) - regCost; d > 0 {
				e.meter.Charge(d)
			}
		}
		if reg != nil {
			_ = e.cache.Release(reg)
		}
		reg = creg

		obs, sp = e.chunkSpanBegin(trace.KindChunkXfer, i, n)
		sw = e.meter.Start()
		d := via.NewDescriptor(via.OpRDMAWrite, reg.Seg(0, n))
		d.Remote = via.RemoteSegment{Handle: g.handle, Offset: g.offset}
		if err := e.vi.PostSend(d); err != nil {
			e.chunkSpanEnd(obs, sp, trace.KindChunkXfer, false, i)
			return sent, err
		}
		if st := e.waitDesc(d); st != via.StatusSuccess {
			e.chunkSpanEnd(obs, sp, trace.KindChunkXfer, false, i)
			return sent, fmt.Errorf("%w: pipelined chunk %d/%d RDMA write failed: %v", ErrTransport, i, nchunks, st)
		}
		e.chunkSpanEnd(obs, sp, trace.KindChunkXfer, true, i)
		sent += n
		fin := ctrlMsg{kind: kChunkFin, idx: i, size: n}
		if overlap {
			prevXfer = sw.Elapsed()
			fin.cost = prevXfer
		}
		e.sendCtrl(fin)
	}
	e.stats.SentMsgs++
	e.stats.SentBytes += uint64(sent)
	e.stats.ZeroCopies++
	e.stats.PipelinedSends++
	e.stats.PipelineChunks += uint64(nchunks)
	if obs := e.obs.Load(); obs != nil {
		obs.pipeline(nchunks)
	}
	return sent, nil
}

// awaitGrant waits for chunk idx's grant, recognizing a receiver-side
// unwind.
func (e *Endpoint) awaitGrant(idx int) (ctrlMsg, error) {
	g := <-e.ctrl
	switch g.kind {
	case kChunkGrant:
		if g.idx != idx {
			return g, fmt.Errorf("msg: pipelined grant out of order: got %d, want %d", g.idx, idx)
		}
		return g, nil
	case kRndvAbort:
		return g, fmt.Errorf("%w: receiver unwound at chunk %d", errRndvAborted, g.idx)
	default:
		return g, fmt.Errorf("msg: expected chunk grant, got kind %d", g.kind)
	}
}

// maxDur returns the largest of three durations.
func maxDur(a, b, c simtime.Duration) simtime.Duration {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

// recvZeroCopy is the rendezvous receive.  An RTS carrying a chunk
// count selects the pipelined protocol; the legacy form registers the
// whole destination buffer (write-enabled), hands the handle to the
// sender and waits for the Fin.
func (e *Endpoint) recvZeroCopy(b *proc.Buffer, m ctrlMsg) (int, error) {
	if m.size > b.Bytes {
		if m.nchunks > 0 {
			e.sendCtrl(ctrlMsg{kind: kRndvAbort})
		}
		return 0, fmt.Errorf("%w: message %d, buffer %d", ErrTooSmall, m.size, b.Bytes)
	}
	if m.nchunks > 0 {
		return e.recvPipelined(b, m)
	}
	reg, err := e.cache.Acquire(b, 0, m.size, e.payloadAttrs(true), regcache.ClassUser)
	if err != nil {
		return 0, err
	}
	defer func() { _ = e.cache.Release(reg) }()
	e.sendCtrl(ctrlMsg{kind: kCTS, handle: reg.Handle()})
	fin := <-e.ctrl
	if fin.kind != kFin {
		return 0, fmt.Errorf("msg: expected Fin, got kind %d", fin.kind)
	}
	e.stats.RecvMsgs++
	e.stats.RecvBytes += uint64(m.size)
	return m.size, nil
}

// recvPipelined is the pipelined rendezvous receive: grant chunk 0,
// then upon each chunk's fin acquire and grant the next one — rewinding
// first by the transfer cost the fin reports, so the registration's
// sim-time span overlaps the transfer it hid behind (the sender's
// deficit charge closes each window; see sendPipelined).  At most two
// chunk registrations are live at once.  A failed acquire unwinds: the
// sender is told to degrade (kRndvAbort) and errRndvAborted tells
// Recv's loop to keep receiving.
func (e *Endpoint) recvPipelined(b *proc.Buffer, m ctrlMsg) (int, error) {
	size, chunk, nchunks := m.size, m.chunk, m.nchunks

	grant := func(idx int, prevCost simtime.Duration) (*vipl.MemRegion, error) {
		e.meter.Retreat(prevCost)
		off := idx * chunk
		n := min(chunk, size-off)
		obs, sp := e.chunkSpanBegin(trace.KindChunkReg, idx, n)
		sw := e.meter.Start()
		r, err := e.cache.Acquire(b, off, n, e.payloadAttrs(true), regcache.ClassUser)
		cost := sw.Elapsed()
		e.chunkSpanEnd(obs, sp, trace.KindChunkReg, err == nil, idx)
		if err != nil {
			e.sendCtrl(ctrlMsg{kind: kRndvAbort, idx: idx})
			return nil, fmt.Errorf("%w: chunk %d registration: %w", errRndvAborted, idx, err)
		}
		e.sendCtrl(ctrlMsg{kind: kChunkGrant, idx: idx, handle: r.Handle(), cost: cost})
		return r, nil
	}

	held, err := grant(0, 0)
	if err != nil {
		return 0, err
	}
	got := 0
	for i := 0; i < nchunks; i++ {
		fin := <-e.ctrl
		switch fin.kind {
		case kChunkFin:
			if fin.idx != i {
				_ = e.cache.Release(held)
				return got, fmt.Errorf("msg: pipelined fin out of order: got %d, want %d", fin.idx, i)
			}
		case kRndvAbort:
			_ = e.cache.Release(held)
			return got, fmt.Errorf("%w: sender unwound at chunk %d", errRndvAborted, fin.idx)
		default:
			_ = e.cache.Release(held)
			return got, fmt.Errorf("msg: expected chunk fin, got kind %d", fin.kind)
		}
		got += fin.size
		if i+1 < nchunks {
			next, err := grant(i+1, fin.cost)
			if err != nil {
				_ = e.cache.Release(held)
				return got, err
			}
			_ = e.cache.Release(held)
			held = next
		} else {
			_ = e.cache.Release(held)
		}
	}
	e.stats.RecvMsgs++
	e.stats.RecvBytes += uint64(got)
	return got, nil
}
