package kagent

import (
	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Observability (DESIGN.md §8).  The agent mirrors the NIC's discipline:
// an atomically attached observer with pre-resolved instruments, one
// atomic load and a branch per registration when detached, and no
// allocation on either path.

// agentObs bundles the tracer and the registration-path instruments.
type agentObs struct {
	trc *trace.Tracer

	// Registration cost decomposition, sim-ns: the whole ioctl and its
	// three stages (kernel-call entry, page lock/pin, TPT insert).
	regTotal  *metrics.Histogram
	regKernel *metrics.Histogram
	regPin    *metrics.Histogram
	regTPT    *metrics.Histogram
	// Deregistration cost, sim-ns.
	deregTotal *metrics.Histogram

	registers    *metrics.Counter
	registerErrs *metrics.Counter
	deregisters  *metrics.Counter
}

// AttachObs attaches (or, with two nils, detaches) an observer to the
// agent's registration path.  Either argument may be nil: a nil tracer
// records only metrics, a nil registry only trace events.
func (a *Agent) AttachObs(trc *trace.Tracer, reg *metrics.Registry) {
	if trc == nil && reg == nil {
		a.obs.Store(nil)
		return
	}
	a.obs.Store(&agentObs{
		trc:          trc,
		regTotal:     reg.Histogram("kagent.reg.total.simns"),
		regKernel:    reg.Histogram("kagent.reg.kernel.simns"),
		regPin:       reg.Histogram("kagent.reg.pin.simns"),
		regTPT:       reg.Histogram("kagent.reg.tpt.simns"),
		deregTotal:   reg.Histogram("kagent.dereg.total.simns"),
		registers:    reg.Counter("kagent.registers"),
		registerErrs: reg.Counter("kagent.register.errors"),
		deregisters:  reg.Counter("kagent.deregisters"),
	})
}

// regStage measures the virtual-time stages of one registration.  The
// zero value (observer detached) is inert.
type regStage struct {
	obs   *agentObs
	m     *simtime.Meter
	span  trace.SpanID
	start simtime.Duration
	last  simtime.Duration
}

// regStart opens a registration span (inert when detached or unmetered).
func (a *Agent) regStart(k trace.Kind, addr uint64, length int) regStage {
	obs := a.obs.Load()
	if obs == nil {
		return regStage{}
	}
	m := a.kernel.Meter()
	if m == nil {
		return regStage{}
	}
	now := m.Now()
	return regStage{
		obs:   obs,
		m:     m,
		span:  obs.trc.Begin(k, addr, uint64(length)),
		start: now,
		last:  now,
	}
}

// mark records the sim-ns delta since the previous mark into the kind's
// stage histogram plus an instant event carrying (pages-or-bytes, delta).
func (s *regStage) mark(k trace.Kind, arg uint64) {
	if s.obs == nil {
		return
	}
	now := s.m.Now()
	d := now - s.last
	s.last = now
	var h *metrics.Histogram
	switch k {
	case trace.KindRegister, trace.KindDeregister:
		h = s.obs.regKernel
	case trace.KindPin:
		h = s.obs.regPin
	case trace.KindTPTInsert, trace.KindTPTInvalidate:
		h = s.obs.regTPT
	}
	h.Observe(int64(d))
	s.obs.trc.Instant(k, arg, uint64(d))
}

// finishOK ends the span successfully (Arg1 = 1, Arg2 = the NIC handle)
// and records the total cost into the kind's histogram.  The handle in
// the end event is what the registration-pairing invariant test matches
// registrations against deregistrations with.
func (s *regStage) finishOK(k trace.Kind, handle uint64) { s.finish(k, 1, handle) }

// finishErr ends the span as failed (Arg1 = 0, Arg2 = 0).
func (s *regStage) finishErr(k trace.Kind) { s.finish(k, 0, 0) }

func (s *regStage) finish(k trace.Kind, okArg, handle uint64) {
	if s.obs == nil {
		return
	}
	h := s.obs.regTotal
	if k == trace.KindDeregister {
		h = s.obs.deregTotal
		s.obs.deregisters.Inc()
	} else {
		s.obs.registers.Inc()
		if okArg == 0 {
			s.obs.registerErrs.Inc()
		}
	}
	h.Observe(int64(s.m.Now() - s.start))
	s.obs.trc.End(s.span, k, okArg, handle)
}
