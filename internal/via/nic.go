package via

import (
	"fmt"
	"sync"

	"repro/internal/phys"
	"repro/internal/simtime"
)

// Stats counts NIC activity.
type Stats struct {
	Sends          uint64 // send descriptors completed successfully
	Recvs          uint64 // receive descriptors completed successfully
	RDMAWrites     uint64 // RDMA writes completed
	RDMAReads      uint64 // RDMA reads completed
	BytesTX        uint64 // payload bytes transmitted
	BytesRX        uint64 // payload bytes received
	TagViolations  uint64 // protection-tag or attribute failures
	RecvUnderflows uint64 // sends that found no receive descriptor posted
	ImmediateOnly  uint64 // descriptors served from immediate data alone
}

// NIC is one simulated VIA network interface controller.
type NIC struct {
	name  string
	mem   *phys.Memory
	meter *simtime.Meter
	tpt   *tpt

	mu     sync.Mutex
	vis    map[int]*VI
	nextVI int
	stats  Stats
	eng    *engine
}

// DefaultTPTSlots is the default TPT size (pages registrable at once) —
// 8 Mi of registered memory, a plausible mid-range card of the era.
const DefaultTPTSlots = 2048

// NewNIC creates a NIC attached to the node's physical memory.
func NewNIC(name string, mem *phys.Memory, meter *simtime.Meter, tptSlots int) *NIC {
	if tptSlots <= 0 {
		tptSlots = DefaultTPTSlots
	}
	if meter == nil {
		meter = &simtime.Meter{}
	}
	return &NIC{
		name:  name,
		mem:   mem,
		meter: meter,
		tpt:   newTPT(tptSlots),
		vis:   make(map[int]*VI),
	}
}

// Name returns the NIC's name.
func (n *NIC) Name() string { return n.name }

// Stats returns a snapshot of NIC statistics.
func (n *NIC) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// FreeTPTSlots reports the unused TPT capacity in pages.
func (n *NIC) FreeTPTSlots() int { return n.tpt.freeSlots() }

// Regions reports the number of registered regions.
func (n *NIC) Regions() int { return n.tpt.regionCount() }

// CreateVI creates a virtual interface carrying the given protection tag.
func (n *NIC) CreateVI(tag ProtectionTag) (*VI, error) {
	if tag == InvalidTag {
		return nil, fmt.Errorf("via: cannot create VI with the invalid tag")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	v := &VI{nic: n, id: n.nextVI, tag: tag, maxTransfer: DefaultMaxTransferSize}
	n.nextVI++
	n.vis[v.id] = v
	return v, nil
}

// RegisterMemory enters a buffer's physical page list into the TPT and
// returns the handle the DMA engine will use.  pages are the frame
// addresses backing the buffer in order; offset is the buffer start
// within the first page; length is the byte length.
//
// The NIC records the addresses as given — it has no way to notice if
// the kernel's locking scheme later lets the pages move.
func (n *NIC) RegisterMemory(pages []phys.Addr, offset, length int, tag ProtectionTag, attrs MemAttrs) (MemHandle, error) {
	if tag == InvalidTag {
		return NoMemHandle, fmt.Errorf("via: registration with the invalid tag")
	}
	h, err := n.tpt.register(pages, offset, length, tag, attrs)
	if err != nil {
		return NoMemHandle, err
	}
	n.meter.ChargeN(n.meter.Costs.TPTUpdate, len(pages))
	return h, nil
}

// DeregisterMemory invalidates a handle's TPT slots.  Like registration,
// it costs one TPT update per page: every slot of the region must be
// invalidated individually.
func (n *NIC) DeregisterMemory(h MemHandle) error {
	slots, err := n.tpt.deregister(h)
	if err != nil {
		return err
	}
	n.meter.ChargeN(n.meter.Costs.TPTUpdate, slots)
	return nil
}

// RegionLength reports the registered length of a handle.
func (n *NIC) RegionLength(h MemHandle) (int, error) { return n.tpt.regionLength(h) }

// DMAWriteLocal writes data into local registered memory through the
// TPT, as the kernel agent does in step 5 of the locktest experiment
// ("simulating a DMA operation of the NIC").  The write lands at the
// physical addresses recorded at registration time.
func (n *NIC) DMAWriteLocal(h MemHandle, off int, data []byte, tag ProtectionTag) error {
	n.meter.Charge(n.meter.Costs.DMAStartup)
	n.meter.ChargeN(n.meter.Costs.DMAPerByte, len(data))
	return n.tptCopy(h, off, data, tag, true, nil)
}

// DMAReadLocal reads local registered memory through the TPT.
func (n *NIC) DMAReadLocal(h MemHandle, off int, data []byte, tag ProtectionTag) error {
	n.meter.Charge(n.meter.Costs.DMAStartup)
	n.meter.ChargeN(n.meter.Costs.DMAPerByte, len(data))
	return n.tptCopy(h, off, data, tag, false, nil)
}

// tptCopy moves len(buf) bytes between buf and registered memory,
// translating page by page so non-contiguous frames are handled.
func (n *NIC) tptCopy(h MemHandle, off int, buf []byte, tag ProtectionTag, write bool, needAttr func(MemAttrs) bool) error {
	done := 0
	for done < len(buf) {
		cur := off + done
		pa, err := n.tpt.translate(h, cur, tag, needAttr)
		if err != nil {
			return err
		}
		// Stay within the current page.
		chunk := phys.PageSize - int(pa&phys.PageMask)
		if chunk > len(buf)-done {
			chunk = len(buf) - done
		}
		if write {
			err = n.mem.WritePhys(pa, buf[done:done+chunk])
		} else {
			err = n.mem.ReadPhys(pa, buf[done:done+chunk])
		}
		if err != nil {
			return err
		}
		done += chunk
	}
	return nil
}

// process executes one send-queue descriptor synchronously (the DMA
// engine).  Data-path failures complete the descriptor with an error
// status rather than returning an error, matching hardware behaviour.
func (n *NIC) process(v *VI, d *Descriptor) {
	switch d.Op {
	case OpSend:
		n.processSend(v, d)
	case OpRDMAWrite:
		n.processRDMAWrite(v, d)
	case OpRDMARead:
		n.processRDMARead(v, d)
	default:
		v.completeSend(d, StatusProtectionError, 0)
	}
}

// gather collects a descriptor's local segments through the TPT.
func (n *NIC) gather(v *VI, d *Descriptor) ([]byte, error) {
	total := d.TotalLength()
	if total == 0 {
		return nil, nil
	}
	buf := make([]byte, total)
	pos := 0
	for _, s := range d.Segs {
		if err := n.tptCopy(s.Handle, s.Offset, buf[pos:pos+s.Length], v.tag, false, nil); err != nil {
			return nil, err
		}
		pos += s.Length
	}
	return buf, nil
}

// scatter distributes payload into a descriptor's local segments.
func (n *NIC) scatter(v *VI, d *Descriptor, payload []byte) error {
	pos := 0
	for _, s := range d.Segs {
		if pos >= len(payload) {
			break
		}
		chunk := s.Length
		if chunk > len(payload)-pos {
			chunk = len(payload) - pos
		}
		if err := n.tptCopy(s.Handle, s.Offset, payload[pos:pos+chunk], v.tag, true, nil); err != nil {
			return err
		}
		pos += chunk
	}
	return nil
}

func (n *NIC) bumpStat(f func(*Stats)) {
	n.mu.Lock()
	f(&n.stats)
	n.mu.Unlock()
}

// processSend implements the two-sided send/receive path: gather locally,
// cross the wire, match the peer's receive descriptor, scatter remotely.
func (n *NIC) processSend(v *VI, d *Descriptor) {
	v.mu.Lock()
	peer := v.peer
	v.mu.Unlock()
	if peer == nil {
		v.completeSend(d, StatusConnectionError, 0)
		return
	}

	payload, err := n.gather(v, d)
	if err != nil {
		n.bumpStat(func(s *Stats) { s.TagViolations++ })
		v.completeSend(d, StatusProtectionError, 0)
		return
	}
	if payload == nil && d.HasImmediate {
		// Immediate-only fast path: the four data bytes ride inside the
		// descriptor, so the second DMA action (the data fetch) is saved
		// entirely — the optimization the VIA spec provides for tiny
		// payloads.
		n.bumpStat(func(s *Stats) { s.ImmediateOnly++ })
	} else {
		n.meter.Charge(n.meter.Costs.DMAStartup)
		n.meter.ChargeN(n.meter.Costs.DMAPerByte, len(payload))
	}
	n.meter.Charge(n.meter.Costs.WireLatency)

	rd := peer.popRecv()
	if rd == nil {
		// A send with no posted receive breaks a reliable connection.
		peer.nic.bumpStat(func(s *Stats) { s.RecvUnderflows++ })
		v.completeSend(d, StatusConnectionError, 0)
		v.breakConnection()
		return
	}
	if len(payload) > rd.TotalLength() {
		peer.completeRecv(rd, StatusLengthError, 0)
		v.completeSend(d, StatusLengthError, 0)
		v.breakConnection()
		return
	}
	pn := peer.nic
	// Cut-through delivery: the receiver's DMA engine streams the payload
	// as it arrives, overlapping the sender's transfer, so only the
	// startup cost adds latency (per-byte time was charged at the sender).
	// Immediate-only messages skip the data DMA on this side too.
	if len(payload) > 0 {
		pn.meter.Charge(pn.meter.Costs.DMAStartup)
	}
	if err := pn.scatter(peer, rd, payload); err != nil {
		pn.bumpStat(func(s *Stats) { s.TagViolations++ })
		peer.completeRecv(rd, StatusProtectionError, 0)
		v.completeSend(d, StatusProtectionError, 0)
		return
	}
	rd.Immediate = d.Immediate
	rd.HasImmediate = d.HasImmediate
	peer.completeRecv(rd, StatusSuccess, len(payload))
	v.completeSend(d, StatusSuccess, len(payload))
	n.bumpStat(func(s *Stats) { s.Sends++; s.BytesTX += uint64(len(payload)) })
	pn.bumpStat(func(s *Stats) { s.Recvs++; s.BytesRX += uint64(len(payload)) })
}

// processRDMAWrite implements the one-sided write: gather locally, check
// the remote region's tag and write-enable, scatter into remote memory.
// No remote descriptor is consumed.
func (n *NIC) processRDMAWrite(v *VI, d *Descriptor) {
	v.mu.Lock()
	peer := v.peer
	v.mu.Unlock()
	if peer == nil {
		v.completeSend(d, StatusConnectionError, 0)
		return
	}
	payload, err := n.gather(v, d)
	if err != nil {
		n.bumpStat(func(s *Stats) { s.TagViolations++ })
		v.completeSend(d, StatusProtectionError, 0)
		return
	}
	n.meter.Charge(n.meter.Costs.DMAStartup)
	n.meter.ChargeN(n.meter.Costs.DMAPerByte, len(payload))
	n.meter.Charge(n.meter.Costs.WireLatency)

	pn := peer.nic
	err = pn.tptCopy(d.Remote.Handle, d.Remote.Offset, payload, peer.tag, true,
		func(a MemAttrs) bool { return a.EnableRDMAWrite })
	if err != nil {
		pn.bumpStat(func(s *Stats) { s.TagViolations++ })
		v.completeSend(d, StatusProtectionError, 0)
		return
	}
	v.completeSend(d, StatusSuccess, len(payload))
	n.bumpStat(func(s *Stats) { s.RDMAWrites++; s.BytesTX += uint64(len(payload)) })
	pn.bumpStat(func(s *Stats) { s.BytesRX += uint64(len(payload)) })
}

// processRDMARead implements the one-sided read: fetch remote registered
// memory (tag + read-enable checked at the remote NIC) and scatter it
// into the local segments.
func (n *NIC) processRDMARead(v *VI, d *Descriptor) {
	v.mu.Lock()
	peer := v.peer
	v.mu.Unlock()
	if peer == nil {
		v.completeSend(d, StatusConnectionError, 0)
		return
	}
	total := d.TotalLength()
	buf := make([]byte, total)
	n.meter.Charge(n.meter.Costs.WireLatency) // request
	pn := peer.nic
	err := pn.tptCopy(d.Remote.Handle, d.Remote.Offset, buf, peer.tag, false,
		func(a MemAttrs) bool { return a.EnableRDMARead })
	if err != nil {
		pn.bumpStat(func(s *Stats) { s.TagViolations++ })
		v.completeSend(d, StatusProtectionError, 0)
		return
	}
	pn.meter.Charge(pn.meter.Costs.DMAStartup)
	pn.meter.ChargeN(pn.meter.Costs.DMAPerByte, total)
	n.meter.Charge(n.meter.Costs.WireLatency) // response
	if err := n.scatter(v, d, buf); err != nil {
		n.bumpStat(func(s *Stats) { s.TagViolations++ })
		v.completeSend(d, StatusProtectionError, 0)
		return
	}
	v.completeSend(d, StatusSuccess, total)
	n.bumpStat(func(s *Stats) { s.RDMAReads++; s.BytesRX += uint64(total) })
	pn.bumpStat(func(s *Stats) { s.BytesTX += uint64(total) })
}
