package mm

import (
	"fmt"

	"repro/internal/pgtable"
	"repro/internal/phys"
)

// Range notifiers: the MMU-notifier mechanism the nopin registration
// mode builds on.  A driver watching a virtual range registers a
// callback; whenever the kernel is about to take a page of that range
// away from its current frame — swap-out, munmap/exit, mprotect to
// PROT_NONE, or a COW break that moves the mapping to a fresh copy —
// the callback fires once per affected page, before the old frame can
// be freed or reused.  The NIC-side subscriber clears the page's TPT
// present bit, so DMA faults instead of touching an orphaned frame.
//
// Contract: callbacks run under the kernel lock and therefore MUST NOT
// re-enter the Kernel (no faults, no registration calls).  Calling down
// into the NIC's TPT is safe — the TPT never calls back into mm, so the
// lock order k.mu → tpt.mu has no cycle.

// NotifyKind says why a page is losing its frame.
type NotifyKind uint8

const (
	// NotifySwapOut: the page is being evicted to swap.
	NotifySwapOut NotifyKind = iota
	// NotifyUnmap: the mapping is going away (munmap, process exit,
	// mprotect to PROT_NONE).
	NotifyUnmap
	// NotifyCOW: a copy-on-write break is moving the mapping to a new
	// frame; the old frame stays with the other sharers.
	NotifyCOW
)

func (nk NotifyKind) String() string {
	switch nk {
	case NotifySwapOut:
		return "swap-out"
	case NotifyUnmap:
		return "unmap"
	case NotifyCOW:
		return "cow"
	default:
		return fmt.Sprintf("notify(%d)", uint8(nk))
	}
}

// NotifyEvent describes one page losing its frame.
type NotifyEvent struct {
	// VPN is the affected virtual page.
	VPN pgtable.VPN
	// PageIndex is the page's index relative to the watched range start
	// (what a TPT subscriber needs: the region page number).
	PageIndex int
	// Kind says which kernel path is taking the frame away.
	Kind NotifyKind
}

// rangeNotifier is one registered watch.
type rangeNotifier struct {
	id     int
	as     *AddressSpace
	start  pgtable.VPN
	npages int
	fn     func(NotifyEvent)
}

// RegisterRangeNotifier watches npages starting at the page containing
// addr in the given address space.  fn fires under the kernel lock —
// see the package contract above.  Returns the registration id.
func (k *Kernel) RegisterRangeNotifier(as *AddressSpace, addr pgtable.VAddr, npages int, fn func(NotifyEvent)) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	id := k.nextNotifier
	k.nextNotifier++
	k.notifiers[id] = &rangeNotifier{
		id: id, as: as, start: pgtable.PageOf(addr), npages: npages, fn: fn,
	}
	return id
}

// UnregisterRangeNotifier removes a watch; unknown ids are ignored
// (teardown paths may race process exit).
func (k *Kernel) UnregisterRangeNotifier(id int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.notifiers, id)
}

// notifyPageLocked fires every notifier watching (as, v).  Callers hold
// k.mu and call this BEFORE the page's old frame can be freed or
// reused, so a subscriber's TPT entry is non-present by the time the
// frame could belong to someone else.
func (k *Kernel) notifyPageLocked(as *AddressSpace, v pgtable.VPN, kind NotifyKind) {
	if len(k.notifiers) == 0 {
		return
	}
	for _, nt := range k.notifiers {
		if nt.as != as || v < nt.start || v >= nt.start+pgtable.VPN(nt.npages) {
			continue
		}
		k.stats.NotifierFires++
		nt.fn(NotifyEvent{VPN: v, PageIndex: int(v - nt.start), Kind: kind})
	}
}

// ResolvePage faults the page containing addr present (as a write
// access) and passes its physical address to fn while still holding the
// kernel lock, so reclaim cannot evict the page between the fault-in
// and fn — the repair window the nopin IO-fault handler needs to enter
// a valid translation into the TPT atomically with respect to eviction.
// fn is subject to the same no-re-entry contract as notifier callbacks.
func (k *Kernel) ResolvePage(as *AddressSpace, addr pgtable.VAddr, fn func(phys.Addr) error) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if as.dead {
		return ErrNoProcess
	}
	pfn, err := k.translateLocked(as, pgtable.PageOf(addr), true)
	if err != nil {
		return err
	}
	if fn == nil {
		return nil
	}
	return fn(pfn.Addr() + phys.Addr(pgtable.Offset(addr)))
}
