package msg

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/kagent"
	"repro/internal/mm"
	"repro/internal/phys"
	"repro/internal/via"
)

func TestRemapAligned(t *testing.T) {
	c := newCluster(t, core.StrategyKiobuf, 0)
	c.transfer(t, 4*phys.PageSize, Remap, 7)
	s := c.epA.Stats()
	if s.RemapSends != 1 || s.RemapFallbacks != 0 {
		t.Fatalf("sender stats: %+v", s)
	}
	r := c.epB.Stats()
	if r.RemapRecvs != 1 || r.RemapPages != 4 || r.RemapTailBytes != 0 {
		t.Fatalf("receiver stats: %+v", r)
	}
	// Delivery was frame exchange, not scatter copy.
	ks := c.kernelB.Stats()
	if ks.FrameDonations != 4 || ks.FrameAdopts != 4 {
		t.Fatalf("kernel frames: donations=%d adopts=%d", ks.FrameDonations, ks.FrameAdopts)
	}
}

func TestRemapUnalignedTail(t *testing.T) {
	c := newCluster(t, core.StrategyKiobuf, 0)
	size := 2*phys.PageSize + 777
	c.transfer(t, size, Remap, 9)
	r := c.epB.Stats()
	if r.RemapRecvs != 1 || r.RemapPages != 2 || r.RemapTailBytes != 777 {
		t.Fatalf("receiver stats: %+v", r)
	}
	ks := c.kernelB.Stats()
	// The tail staging frame is donated but released, never adopted.
	if ks.FrameDonations != 3 || ks.FrameAdopts != 2 {
		t.Fatalf("kernel frames: donations=%d adopts=%d", ks.FrameDonations, ks.FrameAdopts)
	}
}

func TestRemapSubPageDegrades(t *testing.T) {
	c := newCluster(t, core.StrategyKiobuf, 0)
	c.transfer(t, 100, Remap, 3)
	s := c.epA.Stats()
	if s.RemapSends != 0 {
		t.Fatalf("sub-page send used frame exchange: %+v", s)
	}
	if s.SentMsgs != 1 {
		t.Fatalf("sub-page send not delivered: %+v", s)
	}
	if c.kernelB.Stats().FrameDonations != 0 {
		t.Fatal("sub-page send donated frames")
	}
}

func TestRemapTooSmallDst(t *testing.T) {
	c := newCluster(t, core.StrategyKiobuf, 0)
	src, _ := c.procA.Malloc(4 * phys.PageSize)
	dst, _ := c.procB.Malloc(phys.PageSize)
	if err := src.FillPattern(1); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := c.epA.Send(src, Remap)
		errc <- err
	}()
	_, err := c.epB.Recv(dst)
	if !errors.Is(err, ErrTooSmall) {
		t.Fatalf("recv: %v, want ErrTooSmall", err)
	}
	// Same taxonomy as every other protocol: the mismatch is the
	// receiver's error, the sender's transfer degrades and completes.
	if err := <-errc; err != nil {
		t.Fatalf("send: %v, want success (degraded one-copy)", err)
	}
	// The declined grant released its staging frames.
	if n := c.kernelB.OrphanFrames(); n != 0 {
		t.Fatalf("declined transfer leaked %d frames", n)
	}
}

func TestRemapRegistrationFaultDegrades(t *testing.T) {
	c := newCluster(t, core.StrategyKiobuf, 0)
	// Fail the receiver's staging-frame TPT registration once: the
	// receiver must NAK and the transfer must still deliver one-copy.
	inj := faultinject.New(1)
	inj.FailNth(kagent.SiteRegister, 1, errors.New("injected tpt failure"))
	c.agentB.SetFaultInjector(inj)
	c.transfer(t, 8*phys.PageSize, Remap, 5)
	s := c.epA.Stats()
	if s.RemapFallbacks != 1 || s.RemapSends != 0 {
		t.Fatalf("sender stats: %+v", s)
	}
	if c.kernelB.Stats().FrameAdopts != 0 {
		t.Fatal("declined transfer still adopted frames")
	}
	if n := c.kernelB.OrphanFrames(); n != 0 {
		t.Fatalf("declined transfer leaked %d frames", n)
	}
}

// TestRemapScribblePolicies pins the ownership guarantee: whatever a
// concurrent writer does to the in-flight buffer, the receiver gets the
// snapshot taken at Send, and the writer sees either a typed failure
// (fail-fast) or success against a private copy (copy-on-touch).
func TestRemapScribblePolicies(t *testing.T) {
	for _, tc := range []struct {
		name   string
		opts   []Options
		policy ScribblePolicy
	}{
		{"fail-fast", nil, ScribbleFail},
		{"copy-on-touch", []Options{{ScribblePolicy: ScribbleCopy}}, ScribbleCopy},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := newCluster(t, core.StrategyKiobuf, 0, tc.opts...)
			size := 16 * phys.PageSize
			src, _ := c.procA.Malloc(size)
			dst, _ := c.procB.Malloc(size)
			if err := src.FillPattern(11); err != nil {
				t.Fatal(err)
			}
			want := make([]byte, size)
			if err := src.Read(0, want); err != nil {
				t.Fatal(err)
			}

			// The writer hammers one byte with 0xFF for the whole window —
			// before, during and after the flight.  Writes landing outside
			// the guard window are legitimate (the buffer is the app's),
			// so the delivery oracle allows either value at that one byte;
			// everything else must be the pristine pattern.
			const scribbleOff = phys.PageSize + 17
			var (
				wg        sync.WaitGroup
				writeErrs []error
			)
			stop := make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					err := src.Write(scribbleOff, []byte{0xFF})
					if err != nil {
						writeErrs = append(writeErrs, err)
					}
				}
			}()

			errc := make(chan error, 1)
			go func() {
				_, err := c.epA.Send(src, Remap)
				errc <- err
			}()
			n, err := c.epB.Recv(dst)
			close(stop)
			wg.Wait()
			if err != nil {
				t.Fatalf("recv: %v", err)
			}
			if err := <-errc; err != nil {
				t.Fatalf("send: %v", err)
			}
			if n != size {
				t.Fatalf("received %d of %d", n, size)
			}
			// The snapshot taken at Send is what arrives: no byte the
			// writer pushed during the flight may show up.
			got := make([]byte, size)
			if err := dst.Read(0, got); err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if i == scribbleOff && got[i] == 0xFF {
					continue // landed before the guard went up — part of the snapshot
				}
				if got[i] != want[i] {
					t.Fatalf("byte %d: got %#x, want %#x (scribble leaked mid-flight)", i, got[i], want[i])
				}
			}
			// Writer error taxonomy: fail-fast writers see the typed
			// error, copy-on-touch writers never fail.
			for _, werr := range writeErrs {
				if !errors.Is(werr, ErrWriteDuringFlight) {
					t.Fatalf("writer error %v, want ErrWriteDuringFlight", werr)
				}
			}
			if tc.policy == ScribbleCopy && len(writeErrs) != 0 {
				t.Fatalf("copy-on-touch writer failed: %v", writeErrs[0])
			}
			// Counters agree with what the writer observed.
			if tc.policy == ScribbleFail && uint64(len(writeErrs)) != c.epA.Stats().ScribbleFaults {
				t.Fatalf("ScribbleFaults=%d, writer saw %d", c.epA.Stats().ScribbleFaults, len(writeErrs))
			}
		})
	}
}

// TestRemapFrameAccounting is the property test for remap receives:
// after N transfers with random sizes and alignments, every destination
// page is a plainly-owned mapping (one reference, no pins, no reserved
// flag), the donated-frame ledger balances exactly, and freeing the
// buffers returns physical memory to its starting level.
func TestRemapFrameAccounting(t *testing.T) {
	c := newCluster(t, core.StrategyKiobuf, 0)
	rng := rand.New(rand.NewSource(99))
	freeBefore := c.kernelB.FreePages()

	const rounds = 25
	for i := 0; i < rounds; i++ {
		size := 1 + rng.Intn(8*phys.PageSize)
		if rng.Intn(2) == 0 { // bias half the rounds to page-aligned sizes
			size = (1 + rng.Intn(8)) * phys.PageSize
		}
		c.transfer(t, size, Remap, byte(rng.Intn(256)))
	}

	// One more transfer whose buffer we keep mapped, to walk its frames.
	size := 6*phys.PageSize + 123
	src, _ := c.procA.Malloc(size)
	dst, _ := c.procB.Malloc(size)
	if err := src.FillPattern(42); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := c.epA.Send(src, Remap)
		errc <- err
	}()
	if _, err := c.epB.Recv(dst); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	pfns, err := dst.ResidentPFNs()
	if err != nil {
		t.Fatal(err)
	}
	ph := c.kernelB.Phys()
	for i, p := range pfns {
		if ph.RefCount(p) != 1 {
			t.Fatalf("dst page %d: refcount %d, want 1", i, ph.RefCount(p))
		}
		if ph.Pins(p) != 0 {
			t.Fatalf("dst page %d: %d pins left", i, ph.Pins(p))
		}
		if ph.TestFlags(p, phys.PGReserved) {
			t.Fatalf("dst page %d still PG_reserved", i)
		}
	}

	// Ledger: every donated frame was either adopted or returned.
	ks := c.kernelB.Stats()
	if ks.FrameAdopts > ks.FrameDonations {
		t.Fatalf("adopted %d > donated %d", ks.FrameAdopts, ks.FrameDonations)
	}
	if n := c.kernelB.OrphanFrames(); n != 0 {
		t.Fatalf("OrphanFrames = %d", n)
	}
	if err := c.kernelB.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := c.kernelA.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Free the held buffer: memory returns to the pre-transfer level.
	if err := c.procB.Free(dst); err != nil {
		t.Fatal(err)
	}
	if err := c.procA.Free(src); err != nil {
		t.Fatal(err)
	}
	if got := c.kernelB.FreePages(); got != freeBefore {
		t.Fatalf("receiver free pages %d, want %d", got, freeBefore)
	}
}

// TestRemapOutsideReliability pins the reliability-domain boundary
// (DESIGN.md §13): the remap data phase is NOT retried.  A link that
// dies under the RDMA write surfaces as a typed ErrTransport on the
// sender and a typed abort on the receiver — no retransmission, no
// partial delivery counted as success.  (The stripe analogue is
// TestStripeAllRailsDown.)
func TestRemapOutsideReliability(t *testing.T) {
	c := newCluster(t, core.StrategyKiobuf, 0)
	size := 32 * phys.PageSize
	// Fail the one DMA large enough to be the remap data phase; control
	// messages and ring traffic stay up.
	inj := faultinject.New(7)
	inj.FailWhen(via.SiteDMA, func(op faultinject.Op) bool { return op.N >= size }, via.ErrLinkDown)
	c.nicA.SetFaultInjector(inj)

	src, _ := c.procA.Malloc(size)
	dst, _ := c.procB.Malloc(size)
	if err := src.FillPattern(21); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := c.epA.Send(src, Remap)
		errc <- err
	}()
	_, rerr := c.epB.Recv(dst)
	serr := <-errc
	if !errors.Is(serr, ErrTransport) {
		t.Fatalf("sender error %v, want ErrTransport", serr)
	}
	if !errors.Is(rerr, ErrTransport) {
		t.Fatalf("receiver error %v, want ErrTransport", rerr)
	}
	if s := c.epA.Stats(); s.SentMsgs != 0 || s.RemapSends != 0 {
		t.Fatalf("failed transfer counted as sent: %+v", s)
	}
	// The receiver released its staging; nothing leaked.
	if n := c.kernelB.OrphanFrames(); n != 0 {
		t.Fatalf("aborted transfer leaked %d frames", n)
	}
	if err := c.kernelB.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The guard came off: the sender's buffer is writable again.
	if err := src.Write(0, []byte{1}); err != nil {
		t.Fatalf("sender buffer still guarded after failed send: %v", err)
	}
}

// TestProtocolDifferential is the differential harness: a seeded
// generator produces (size, alignment, concurrent-writer, swap-pressure)
// scenarios, each replayed through all four protocols.  Every protocol
// must deliver byte-identical payloads and surface the identical
// sender-visible error taxonomy for the writer.
func TestProtocolDifferential(t *testing.T) {
	const scenarios = 200
	rng := rand.New(rand.NewSource(20260808))
	protocols := []Protocol{Eager, OneCopy, ZeroCopy, Remap}

	for i := 0; i < scenarios; i++ {
		size := 1 + rng.Intn(24*phys.PageSize)
		switch rng.Intn(3) {
		case 0: // page-aligned
			size = (1 + rng.Intn(24)) * phys.PageSize
		case 1: // page-aligned with a short tail
			size = (1+rng.Intn(24))*phys.PageSize + 1 + rng.Intn(phys.PageSize-1)
		}
		writer := rng.Intn(3) == 0
		swapPressure := rng.Intn(4) == 0
		seed := byte(rng.Intn(256))
		writerOff := rng.Intn(size)

		name := fmt.Sprintf("scn%03d/size=%d/writer=%v/swap=%v", i, size, writer, swapPressure)
		results := make(map[Protocol]string)
		for _, p := range protocols {
			results[p] = runScenario(t, p, size, seed, writer, swapPressure, writerOff)
		}
		for _, p := range protocols[1:] {
			if results[p] != results[protocols[0]] {
				t.Fatalf("%s: %s = %q, %s = %q", name, protocols[0], results[protocols[0]], p, results[p])
			}
		}
	}
}

// runScenario plays one scenario through one protocol and returns a
// canonical outcome string: delivery digest plus writer error taxonomy.
func runScenario(t *testing.T, p Protocol, size int, seed byte, writer, swapPressure bool, writerOff int) string {
	t.Helper()
	c := newCluster(t, core.StrategyKiobuf, 0)
	src, err := c.procA.Malloc(size)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := c.procB.Malloc(size)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.FillPattern(seed); err != nil {
		t.Fatal(err)
	}
	if swapPressure {
		c.kernelA.SwapOut(4096)
		c.kernelA.SwapOut(4096)
		c.kernelB.SwapOut(4096)
		c.kernelB.SwapOut(4096)
	}

	// For writer scenarios, an external fail-fast guard covers the source
	// for the whole transfer window, for every protocol alike: the
	// writer's outcome is then deterministic (typed failure) regardless
	// of each protocol's internal timing, making the error taxonomy
	// comparable across protocols.
	var (
		guard     *mm.WriteGuard
		writerErr error
		wg        sync.WaitGroup
	)
	if writer {
		guard, err = c.kernelA.RevokeWrite(c.procA.AS(), src.Addr, src.Pages(), mm.GuardFailFast, nil)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			writerErr = src.Write(writerOff, []byte{0xAA})
		}()
	}

	errc := make(chan error, 1)
	go func() {
		_, serr := c.epA.Send(src, p)
		errc <- serr
	}()
	var (
		n    int
		rerr error
		serr error
	)
	recvDone := make(chan struct{})
	go func() {
		n, rerr = c.epB.Recv(dst)
		close(recvDone)
	}()
	select {
	case <-recvDone:
		serr = <-errc
	case serr = <-errc:
		// A send that fails before announcing leaves the receiver
		// blocked; surface the sender's error instead of deadlocking.
		if serr != nil {
			t.Fatalf("%s send failed before announce (size=%d writer=%v swap=%v): %v",
				p, size, writer, swapPressure, serr)
		}
		<-recvDone
	}
	wg.Wait()
	if guard != nil {
		if err := c.kernelA.RestoreWrite(guard); err != nil {
			t.Fatal(err)
		}
	}
	if serr != nil {
		t.Fatalf("%s send (size=%d writer=%v swap=%v): %v", p, size, writer, swapPressure, serr)
	}
	if rerr != nil {
		t.Fatalf("%s recv (size=%d writer=%v swap=%v): %v", p, size, writer, swapPressure, rerr)
	}
	bad, err := dst.VerifyPattern(seed)
	if err != nil {
		t.Fatal(err)
	}

	wclass := "none"
	switch {
	case writer && errors.Is(writerErr, ErrWriteDuringFlight):
		wclass = "write-during-flight"
	case writer && writerErr != nil:
		wclass = "unexpected:" + writerErr.Error()
	case writer:
		wclass = "write-allowed"
	}
	return fmt.Sprintf("n=%d badpages=%d writer=%s", n, len(bad), wclass)
}
