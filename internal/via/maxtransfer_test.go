package via

import (
	"errors"
	"testing"
)

func TestMaxTransferSizeDefault(t *testing.T) {
	r := newRig(t)
	if got := r.viA.MaxTransferSize(); got != DefaultMaxTransferSize {
		t.Fatalf("default = %d", got)
	}
}

func TestMaxTransferSizeEnforced(t *testing.T) {
	r := newRig(t)
	hA, _ := regFrames(t, r.nicA, r.memA, 2, tagA, MemAttrs{})
	r.viA.SetMaxTransferSize(1024)
	d := NewDescriptor(OpSend, Segment{Handle: hA, Offset: 0, Length: 2048})
	if err := r.viA.PostSend(d); !errors.Is(err, ErrTransferTooLarge) {
		t.Fatalf("err = %v", err)
	}
	// At the bound it goes through (posting side; no recv needed for the
	// check itself to pass — use a posted recv to complete cleanly).
	hB, _ := regFrames(t, r.nicB, r.memB, 2, tagB, MemAttrs{})
	rd := NewDescriptor(OpRecv, Segment{Handle: hB, Offset: 0, Length: 2048})
	if err := r.viB.PostRecv(rd); err != nil {
		t.Fatal(err)
	}
	ok := NewDescriptor(OpSend, Segment{Handle: hA, Offset: 0, Length: 1024})
	if err := r.viA.PostSend(ok); err != nil {
		t.Fatal(err)
	}
	if st := ok.Wait(); st != StatusSuccess {
		t.Fatalf("status %v", st)
	}
}

func TestMaxTransferSizeReset(t *testing.T) {
	r := newRig(t)
	r.viA.SetMaxTransferSize(16)
	r.viA.SetMaxTransferSize(0)
	if got := r.viA.MaxTransferSize(); got != DefaultMaxTransferSize {
		t.Fatalf("reset = %d", got)
	}
}
