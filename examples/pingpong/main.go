// Pingpong: a NetPIPE-style sweep over the message-passing stack — the
// measurement methodology of the companion article "Comparing MPI
// Performance of SCI and VIA".  For each message size a ping-pong pair
// is timed on the virtual clock and the table reports half-round-trip
// latency and bandwidth per protocol.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/report"
	"repro/internal/simtime"
)

func main() {
	c := cluster.MustNew(cluster.Config{Nodes: 2, Strategy: core.StrategyKiobuf, TPTSlots: 8192})
	a, b, err := c.EndpointPair(0, 1, 0)
	if err != nil {
		log.Fatal(err)
	}

	s := report.Series{
		Title:  "pingpong: half-round-trip latency (sim µs) and bandwidth (sim MB/s)",
		XLabel: "size",
		Lines:  []string{"eager µs", "eager MB/s", "auto µs", "auto MB/s"},
	}
	for _, size := range []int{64, 1024, 8 * 1024, 64 * 1024, 512 * 1024} {
		eagerLat, eagerBW, err := pingpong(c, a, b, size, msg.Eager)
		if err != nil {
			log.Fatal(err)
		}
		autoLat, autoBW, err := pingpong(c, a, b, size, msg.Auto)
		if err != nil {
			log.Fatal(err)
		}
		s.AddPoint(report.Bytes(size), eagerLat, eagerBW, autoLat, autoBW)
	}
	s.Fprint(log.Writer())
	fmt.Println("done; protocols switch at",
		report.Bytes(msg.EagerMax), "and", report.Bytes(msg.OneCopyMax))
}

// pingpong runs 4 warm rounds of A→B→A and returns the mean one-way
// latency (µs) and bandwidth (MB/s).
func pingpong(c *cluster.Cluster, a, b *msg.Endpoint, size int, p msg.Protocol) (latUs, mbs float64, err error) {
	bufA, err := a.Process().Malloc(size)
	if err != nil {
		return 0, 0, err
	}
	bufB, err := b.Process().Malloc(size)
	if err != nil {
		return 0, 0, err
	}
	if err := bufA.Touch(); err != nil {
		return 0, 0, err
	}
	if err := bufB.Touch(); err != nil {
		return 0, 0, err
	}
	const rounds = 4
	var total simtime.Duration
	for i := 0; i <= rounds; i++ {
		start := c.Meter.Now()
		if err := oneWay(a, b, bufA, bufB, p); err != nil {
			return 0, 0, err
		}
		if err := oneWay(b, a, bufB, bufA, p); err != nil {
			return 0, 0, err
		}
		if i > 0 { // round 0 warms the registration caches
			total += c.Meter.Now() - start
		}
	}
	oneWayTime := float64(total) / float64(2*rounds)
	latUs = oneWayTime / float64(simtime.Microsecond)
	mbs = float64(size) / (oneWayTime / float64(simtime.Second)) / 1e6
	return latUs, mbs, nil
}

func oneWay(from, to *msg.Endpoint, src, dst *proc.Buffer, p msg.Protocol) error {
	errc := make(chan error, 1)
	go func() {
		_, err := from.Send(src, p)
		errc <- err
	}()
	if _, err := to.Recv(dst); err != nil {
		return err
	}
	return <-errc
}
