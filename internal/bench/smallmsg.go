package bench

// E24: the small-message fast path.  Two tables:
//
//   - E24a pits the inline descriptor path against the classic staged
//     path at sizes under the inline ceiling.  Inline sends skip the
//     TPT lookup, the gather DMA and the bounce through staging — the
//     payload rides the descriptor image and is charged as PIO — so
//     the virtual cost per message, and with it messages/sec, must
//     separate by well over 2× at 64 B.
//
//   - E24b sweeps the posting batch size over the engine and reports
//     the two per-op overheads batching amortises: doorbells/op (one
//     MMIO per batch instead of per post) and CQ wakeups/op (one
//     notify per completion burst instead of per completion).  Both
//     curves must fall as the batch grows.

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/phys"
	"repro/internal/report"
	"repro/internal/simtime"
	"repro/internal/via"
)

const (
	smallMsgMsgs      = 4096 // messages per E24a point
	smallMsgBatchMsgs = 4096 // messages per E24b point
	smallMsgRound     = 128  // in-flight window per E24b round (< lane depth)
	smallMsgBytes     = 64   // E24b payload
)

// SmallMsg regenerates the E24 tables.
func SmallMsg(w io.Writer) error {
	a := report.Series{
		Title:  "E24a: inline fast path — virtual cost per message, inline vs staged",
		Note:   fmt.Sprintf("%d messages per point, synchronous data path; staged sends gather from registered memory, inline rides the descriptor image", smallMsgMsgs),
		XLabel: "bytes",
		Lines:  []string{"inline sim-µs/msg", "staged sim-µs/msg", "inline kmsg/sim-s", "staged kmsg/sim-s", "speedup ×"},
	}
	for _, size := range []int{16, 64, 256} {
		in, err := smallMsgPathPoint(size, true, smallMsgMsgs)
		if err != nil {
			return fmt.Errorf("smallmsg inline %d: %w", size, err)
		}
		st, err := smallMsgPathPoint(size, false, smallMsgMsgs)
		if err != nil {
			return fmt.Errorf("smallmsg staged %d: %w", size, err)
		}
		a.AddPoint(fmt.Sprintf("%d", size), in, st, 1e3/in, 1e3/st, st/in)
	}
	a.Fprint(w)

	b := report.Series{
		Title:  "E24b: doorbell batching and completion coalescing — per-op overheads vs batch size",
		Note:   fmt.Sprintf("%d %d B inline sends per point over the 2-lane engine, posted in batches; one parked waiter drains the send CQ", smallMsgBatchMsgs, smallMsgBytes),
		XLabel: "batch",
		Lines:  []string{"doorbells/op", "CQ wakeups/op", "sim-µs/msg"},
	}
	for _, win := range []int{1, 2, 4, 8, 16, 32} {
		db, wk, us, err := smallMsgBatchPoint(win, smallMsgBatchMsgs)
		if err != nil {
			return fmt.Errorf("smallmsg batch %d: %w", win, err)
		}
		b.AddPoint(fmt.Sprintf("%d", win), db, wk, us)
	}
	b.Fprint(w)
	return nil
}

// smallMsgRig is a two-NIC fabric with one connected VI pair.
type smallMsgRig struct {
	meter      *simtime.Meter
	memA, memB *phys.Memory
	nicA, nicB *via.NIC
	viA, viB   *via.VI
}

// smallMsgFabric builds the rig; a non-nil sendCQ attaches to viA.
func smallMsgFabric(name string, sendCQ *via.CQ) (*smallMsgRig, error) {
	r := &smallMsgRig{meter: simtime.NewMeter(), memA: phys.New(64), memB: phys.New(64)}
	r.nicA = via.NewNIC(name+"A", r.memA, r.meter, 64)
	r.nicB = via.NewNIC(name+"B", r.memB, r.meter, 64)
	net := via.NewNetwork()
	if err := net.Attach(r.nicA); err != nil {
		return nil, err
	}
	if err := net.Attach(r.nicB); err != nil {
		return nil, err
	}
	var err error
	if sendCQ != nil {
		r.viA, err = r.nicA.CreateVIWithCQ(3, sendCQ, nil)
	} else {
		r.viA, err = r.nicA.CreateVI(3)
	}
	if err != nil {
		return nil, err
	}
	if r.viB, err = r.nicB.CreateVI(3); err != nil {
		return nil, err
	}
	if err := net.Connect(r.viA, r.viB); err != nil {
		return nil, err
	}
	return r, nil
}

// smallMsgPathPoint drives msgs sequential size-byte messages through
// the synchronous data path — inline or staged — and returns the
// virtual microseconds per message.
func smallMsgPathPoint(size int, inline bool, msgs int) (float64, error) {
	r, err := smallMsgFabric("smallmsg", nil)
	if err != nil {
		return 0, err
	}
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	var sd, rd *via.Descriptor
	if inline {
		sd = via.NewDescriptor(via.OpSend)
		rd = via.NewDescriptor(via.OpRecv)
	} else {
		hA, err := regPage(r.nicA, r.memA, 3)
		if err != nil {
			return 0, err
		}
		hB, err := regPage(r.nicB, r.memB, 3)
		if err != nil {
			return 0, err
		}
		sd = via.NewDescriptor(via.OpSend, via.Segment{Handle: hA, Offset: 0, Length: size})
		rd = via.NewDescriptor(via.OpRecv, via.Segment{Handle: hB, Offset: 0, Length: phys.PageSize})
	}
	start := r.meter.Now()
	for i := 0; i < msgs; i++ {
		if i > 0 {
			sd.Reset()
			rd.Reset()
		}
		if inline {
			if err := sd.SetInline(payload); err != nil {
				return 0, err
			}
		}
		if err := r.viB.PostRecv(rd); err != nil {
			return 0, err
		}
		if err := r.viA.PostSend(sd); err != nil {
			return 0, err
		}
		if sd.Status != via.StatusSuccess || rd.Status != via.StatusSuccess {
			return 0, fmt.Errorf("msg %d: statuses %v/%v", i, sd.Status, rd.Status)
		}
	}
	if inline {
		if st := r.nicA.Stats(); st.InlineSends != uint64(msgs) {
			return 0, fmt.Errorf("inline sends %d, want %d — fast path not taken", st.InlineSends, msgs)
		}
	}
	return (r.meter.Now() - start).Micros() / float64(msgs), nil
}

// smallMsgBatchPoint posts msgs inline sends through the engine in
// batches of win descriptors while one blocked waiter drains the send
// CQ, and returns (doorbells/op, CQ wakeups/op, sim-µs/msg).
func smallMsgBatchPoint(win, msgs int) (float64, float64, float64, error) {
	// Depth covers the whole run: completion pushes must never race the
	// drain into an overflow drop, or the waiter starves.
	sendCQ := via.NewCQ(msgs)
	r, err := smallMsgFabric("smallbatch", sendCQ)
	if err != nil {
		return 0, 0, 0, err
	}
	r.nicA.StartEngineLanes(2)
	defer r.nicA.StopEngine()

	payload := make([]byte, smallMsgBytes)
	for i := range payload {
		payload[i] = byte(i * 17)
	}

	// The waiter parks on the CQ between bursts and acks every drained
	// completion, so the producer can hold the next batch until the
	// queue is empty again — each burst then lands on a parked waiter
	// and wakeups/op measures notifies per burst, deterministically.
	acks := make(chan struct{}, smallMsgRound)
	var wg sync.WaitGroup
	var drainErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for got := 0; got < msgs; got++ {
			if _, err := sendCQ.Wait(); err != nil {
				drainErr = err
				return
			}
			acks <- struct{}{}
		}
	}()

	recvs := make([]*via.Descriptor, smallMsgRound)
	for i := range recvs {
		recvs[i] = via.NewDescriptor(via.OpRecv)
	}
	sends := make([]*via.Descriptor, smallMsgRound)
	for i := range sends {
		sends[i] = via.NewDescriptor(via.OpSend)
	}
	start := r.meter.Now()
	dbStart := r.nicA.Stats().Doorbells
	for done := 0; done < msgs; done += smallMsgRound {
		if done > 0 {
			for _, rd := range recvs {
				rd.Reset()
			}
		}
		if err := r.viB.PostRecvBatch(recvs); err != nil {
			return 0, 0, 0, err
		}
		// Interlock per batch: wait the batch's sends and the waiter's
		// drain acks before posting the next.
		for i := 0; i < smallMsgRound; i += win {
			batch := sends[i : i+win]
			for _, sd := range batch {
				if done > 0 {
					sd.Reset()
				}
				if err := sd.SetInline(payload); err != nil {
					return 0, 0, 0, err
				}
			}
			if win == 1 {
				err = r.viA.PostSend(batch[0])
			} else {
				err = r.viA.PostSendBatch(batch)
			}
			if err != nil {
				return 0, 0, 0, err
			}
			for k, sd := range batch {
				if st := sd.Wait(); st != via.StatusSuccess {
					return 0, 0, 0, fmt.Errorf("send %d+%d: status %v", done+i, k, st)
				}
			}
			for range batch {
				<-acks
			}
		}
		// The matched receives complete a beat behind their sends, so
		// settle them too before the next round resets the descriptors.
		for i, rd := range recvs {
			if st := rd.Wait(); st != via.StatusSuccess {
				return 0, 0, 0, fmt.Errorf("round %d recv %d: status %v", done/smallMsgRound, i, st)
			}
		}
	}
	wg.Wait()
	if drainErr != nil {
		return 0, 0, 0, drainErr
	}
	n := float64(msgs)
	db := float64(r.nicA.Stats().Doorbells-dbStart) / n
	wk := float64(sendCQ.Wakeups()) / n
	us := (r.meter.Now() - start).Micros() / n
	return db, wk, us, nil
}
