package msg

import (
	"testing"

	"repro/internal/core"
	"repro/internal/proc"
)

func TestPersistentSendRecv(t *testing.T) {
	c := newCluster(t, core.StrategyKiobuf, 0)
	const size = 128 * 1024
	src, _ := c.procA.Malloc(size)
	dst, _ := c.procB.Malloc(size)

	ps, err := c.epA.SendInit(src)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := c.epB.RecvInit(dst)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 5
	for i := 0; i < rounds; i++ {
		if err := src.FillPattern(byte(i)); err != nil {
			t.Fatal(err)
		}
		errc := make(chan error, 1)
		go func() {
			_, err := ps.Start()
			errc <- err
		}()
		n, err := pr.Start()
		if err != nil {
			t.Fatal(err)
		}
		if n != size {
			t.Fatalf("received %d", n)
		}
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
		bad, err := dst.VerifyPattern(byte(i))
		if err != nil || len(bad) != 0 {
			t.Fatalf("round %d: bad=%v err=%v", i, bad, err)
		}
	}
	// Only the two Init calls registered anything.
	if m := c.epA.Cache().Stats().Misses; m != 1 {
		t.Fatalf("sender misses = %d, want 1", m)
	}
	if m := c.epB.Cache().Stats().Misses; m != 1 {
		t.Fatalf("receiver misses = %d, want 1", m)
	}
	if err := ps.Free(); err != nil {
		t.Fatal(err)
	}
	if err := pr.Free(); err != nil {
		t.Fatal(err)
	}
}

func TestPersistentFreedRejected(t *testing.T) {
	c := newCluster(t, core.StrategyKiobuf, 0)
	src, _ := c.procA.Malloc(1024)
	ps, err := c.epA.SendInit(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Free(); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Start(); err != ErrFreed {
		t.Fatalf("err = %v", err)
	}
	if err := ps.Free(); err != ErrFreed {
		t.Fatalf("double free err = %v", err)
	}
}

func TestPersistentInitValidation(t *testing.T) {
	c := newCluster(t, core.StrategyKiobuf, 0)
	empty := &proc.Buffer{}
	if _, err := c.epA.SendInit(empty); err != ErrEmptyMessage {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.epB.RecvInit(empty); err != ErrEmptyMessage {
		t.Fatalf("err = %v", err)
	}
}

func TestPersistentRecvInteroperatesWithPlainSend(t *testing.T) {
	// A plain ZeroCopy send pairs fine with a persistent receive.
	c := newCluster(t, core.StrategyKiobuf, 0)
	const size = 256 * 1024
	src, _ := c.procA.Malloc(size)
	dst, _ := c.procB.Malloc(size)
	pr, err := c.epB.RecvInit(dst)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.FillPattern(7); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := c.epA.Send(src, ZeroCopy)
		errc <- err
	}()
	if _, err := pr.Start(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	bad, err := dst.VerifyPattern(7)
	if err != nil || len(bad) != 0 {
		t.Fatalf("bad=%v err=%v", bad, err)
	}
}

func TestPersistentSurvivesCachePressure(t *testing.T) {
	// A persistent registration must not be evicted by churning user
	// buffers, even on a tight cache.
	c := newCluster(t, core.StrategyKiobuf, 3)
	const size = 8 * 1024
	src, _ := c.procA.Malloc(size)
	ps, err := c.epA.SendInit(src)
	if err != nil {
		t.Fatal(err)
	}
	dst, _ := c.procB.Malloc(size)
	// Churn: distinct user buffers through the same cache.
	for i := 0; i < 6; i++ {
		u, _ := c.procA.Malloc(size)
		errc := make(chan error, 1)
		go func() {
			_, err := c.epA.Send(u, ZeroCopy)
			errc <- err
		}()
		if _, err := c.epB.Recv(dst); err != nil {
			t.Fatal(err)
		}
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	// The persistent send still works without re-registering.
	misses := c.epA.Cache().Stats().Misses
	errc := make(chan error, 1)
	go func() {
		_, err := ps.Start()
		errc <- err
	}()
	if _, err := c.epB.Recv(dst); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if got := c.epA.Cache().Stats().Misses; got != misses {
		t.Fatalf("persistent send re-registered (misses %d -> %d)", misses, got)
	}
	_ = ps.Free()
}
