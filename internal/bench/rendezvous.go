package bench

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/cluster"
	"repro/internal/msg"
	"repro/internal/report"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// E19: the pipelined rendezvous.  For each message size the same
// first-touch (cache-cold) zero-copy send runs under three pipeline
// shapes — the serialized legacy rendezvous (whole-buffer registration
// before the first byte moves), the chunked-but-serialized ablation
// (PipelineDepth 1), and the double-buffered pipeline (PipelineDepth 2,
// the default) — and the table reports the end-to-end simulated time
// plus the overlap fraction measured from the trace: how much of the
// chunk-registration span union lies inside the chunk-transfer span
// union.
//
// Two buffer states bracket the registration cost the pipeline can
// hide.  "resident" buffers are faulted in beforehand, so registration
// is just pin + TPT time and the transfer dominates — pipelining is
// roughly neutral there, which is the no-regression half of the story.
// "swap-cold" buffers have been evicted to the swap device, so
// registration pays a 6 ms page-in per page (the paper's E3/E4
// scenario); that cost dominates the transfer and the pipeline hides
// one side's registration behind the other's, approaching the 2×
// bound of max(reg, reg, transfer) vs reg + reg + transfer.

// rendezvousSizes is the message-size sweep (all above OneCopyMax).
var rendezvousSizes = []int{256 * 1024, 512 * 1024, 1024 * 1024}

// rendezvousDepths are the compared pipeline shapes, in column order.
var rendezvousDepths = []int{-1, 1, 2}

// rendezvousResult is one cell of the sweep.
type rendezvousResult struct {
	elapsed simtime.Duration
	overlap float64 // fraction of reg-span union inside xfer-span union
	hasSpan bool
}

// rendezvousRun performs one cold zero-copy send of size bytes under
// the given pipeline depth and reports the simulated time and span
// overlap.
func rendezvousRun(size, depth int, swapCold bool) (rendezvousResult, error) {
	var res rendezvousResult
	c, err := cluster.New(cluster.Config{
		Nodes:    2,
		Kernel:   benchKernelConfig(),
		TPTSlots: 4096,
	})
	if err != nil {
		return res, err
	}
	ea, eb, err := c.EndpointPair(0, 1, 0, msg.Options{PipelineDepth: depth})
	if err != nil {
		return res, err
	}
	trc := trace.New(c.Meter, 1<<14)
	ea.AttachObs(trc, nil)
	eb.AttachObs(trc, nil)

	src, err := ea.Process().Malloc(size)
	if err != nil {
		return res, err
	}
	dst, err := eb.Process().Malloc(size)
	if err != nil {
		return res, err
	}
	// Fault every page in (first touch), then optionally push the
	// buffers out to the swap device so registration has to page them
	// back in.  Ring and bounce buffers are registered, hence pinned,
	// hence skipped by swap_out.
	if err := src.FillPattern(0x5a); err != nil {
		return res, err
	}
	if err := dst.FillPattern(0x00); err != nil {
		return res, err
	}
	if swapCold {
		// Multiple passes: the clock algorithm's first visit only clears
		// a page's accessed bit (second chance); a later visit evicts it.
		for _, n := range c.Nodes {
			for i := 0; i < 4; i++ {
				n.Kernel.SwapOut(4096)
			}
		}
	}

	start := c.Meter.Now()
	errc := make(chan error, 1)
	go func() {
		_, err := eb.Recv(dst)
		errc <- err
	}()
	if _, err := ea.Send(src, msg.ZeroCopy); err != nil {
		return res, err
	}
	if err := <-errc; err != nil {
		return res, err
	}
	res.elapsed = c.Meter.Now() - start
	if bad, err := dst.VerifyPattern(0x5a); err != nil || len(bad) > 0 {
		return res, fmt.Errorf("rendezvous payload corrupt: %d bad pages, %v", len(bad), err)
	}
	res.overlap, res.hasSpan = spanOverlap(trc.Snapshot())
	return res, nil
}

// interval is one closed-open sim-time range.
type interval struct{ lo, hi simtime.Duration }

// spanOverlap pairs the trace's chunk-registration and chunk-transfer
// spans and reports how much of the cheaper activity's span time lies
// inside the other's — the pipelining proof: whichever of registration
// and transfer is smaller is the cost the pipeline can hide, so the
// fraction is intersection / min(reg total, transfer total).  hasSpan
// is false when the run emitted no chunk spans (the serialized legacy
// path).
func spanOverlap(events []trace.Event) (frac float64, hasSpan bool) {
	begins := make(map[trace.SpanID]trace.Event)
	var regs, xfers []interval
	for _, ev := range events {
		switch ev.Kind {
		case trace.KindChunkReg, trace.KindChunkXfer:
		default:
			continue
		}
		switch ev.Phase {
		case trace.PhaseBegin:
			begins[ev.Span] = ev
		case trace.PhaseEnd:
			b, ok := begins[ev.Span]
			if !ok || ev.Sim <= b.Sim {
				continue
			}
			iv := interval{lo: b.Sim, hi: ev.Sim}
			if ev.Kind == trace.KindChunkReg {
				regs = append(regs, iv)
			} else {
				xfers = append(xfers, iv)
			}
		}
	}
	if len(regs) == 0 || len(xfers) == 0 {
		return 0, false
	}
	regs, xfers = mergeIntervals(regs), mergeIntervals(xfers)
	var regTotal, xferTotal, inside simtime.Duration
	for _, x := range xfers {
		xferTotal += x.hi - x.lo
	}
	for _, r := range regs {
		regTotal += r.hi - r.lo
		for _, x := range xfers {
			lo, hi := maxD(r.lo, x.lo), minD(r.hi, x.hi)
			if hi > lo {
				inside += hi - lo
			}
		}
	}
	denom := minD(regTotal, xferTotal)
	if denom == 0 {
		return 0, false
	}
	return float64(inside) / float64(denom), true
}

// mergeIntervals unions overlapping intervals (sorts in place).
func mergeIntervals(ivs []interval) []interval {
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	out := ivs[:0]
	for _, iv := range ivs {
		if n := len(out); n > 0 && iv.lo <= out[n-1].hi {
			if iv.hi > out[n-1].hi {
				out[n-1].hi = iv.hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

func maxD(a, b simtime.Duration) simtime.Duration {
	if a > b {
		return a
	}
	return b
}

func minD(a, b simtime.Duration) simtime.Duration {
	if a < b {
		return a
	}
	return b
}

// Rendezvous regenerates E19: serialized vs pipelined rendezvous over
// cold buffers, with the overlap fraction derived from trace spans.
func Rendezvous(w io.Writer) error {
	for _, swapCold := range []bool{false, true} {
		state, unit := "resident", "µs"
		if swapCold {
			state, unit = "swap-cold", "ms"
		}
		t := report.Table{
			Title:   fmt.Sprintf("E19: pipelined rendezvous — first-touch zero-copy send, %s buffers (simulated %s)", state, unit),
			Headers: []string{"size", "serialized", "chunked", "pipelined", "speedup", "overlap"},
			Note: "serialized = whole-buffer registration then one RDMA (PipelineDepth -1); chunked = per-chunk lockstep, no overlap (depth 1); " +
				"pipelined = double-buffered (depth 2, default); speedup = serialized/pipelined; overlap = fraction of the cheaper span set (chunk registration vs chunk transfer) hidden inside the other",
		}
		for _, size := range rendezvousSizes {
			cells := make([]rendezvousResult, len(rendezvousDepths))
			for i, depth := range rendezvousDepths {
				r, err := rendezvousRun(size, depth, swapCold)
				if err != nil {
					return fmt.Errorf("rendezvous size %d depth %d: %w", size, depth, err)
				}
				cells[i] = r
			}
			val := func(d simtime.Duration) float64 {
				if swapCold {
					return float64(d) / float64(simtime.Millisecond)
				}
				return d.Micros()
			}
			pipe := cells[len(cells)-1]
			overlap := "—"
			if pipe.hasSpan {
				overlap = fmt.Sprintf("%.0f%%", 100*pipe.overlap)
			}
			t.AddRow(
				report.Bytes(size),
				val(cells[0].elapsed),
				val(cells[1].elapsed),
				val(cells[2].elapsed),
				fmt.Sprintf("%.2fx", float64(cells[0].elapsed)/float64(cells[2].elapsed)),
				overlap,
			)
		}
		t.Fprint(w)
		fmt.Fprintln(w)
	}
	return nil
}
