package bench

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/regcache"
)

// sweepOutput runs a sweep into a buffer and returns the text.
func sweepOutput(t *testing.T, f func(w *strings.Builder) error) string {
	t.Helper()
	var sb strings.Builder
	if err := f(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRegCostOutput(t *testing.T) {
	out := sweepOutput(t, func(w *strings.Builder) error { return RegCost(w) })
	for _, want := range []string{"E3", "kiobuf", "4KiB", "4MiB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestDeregCostOutput(t *testing.T) {
	out := sweepOutput(t, func(w *strings.Builder) error { return DeregCost(w) })
	if !strings.Contains(out, "E4") {
		t.Fatalf("missing E4 header:\n%s", out)
	}
}

func TestSurvivalShape(t *testing.T) {
	out := sweepOutput(t, func(w *strings.Builder) error { return Survival(w) })
	// At pressure 2.00 refcount must be 0%, kiobuf 100%.
	var line string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(strings.TrimSpace(l), "2.00") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("no 2.00 row in:\n%s", out)
	}
	fields := strings.Fields(line)
	// pressure none refcount pageflag mlock kiobuf
	if len(fields) != 6 {
		t.Fatalf("row %q", line)
	}
	if fields[2] != "0.00" {
		t.Fatalf("refcount at 2.00 = %s, want 0.00", fields[2])
	}
	if fields[5] != "100.00" {
		t.Fatalf("kiobuf at 2.00 = %s, want 100.00", fields[5])
	}
}

func TestMultiRegVerdicts(t *testing.T) {
	out := sweepOutput(t, func(w *strings.Builder) error { return MultiReg(w) })
	for _, want := range []string{"kiobuf", "CORRECT", "pageflag"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// pageflag must be BROKEN and kiobuf CORRECT.
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if len(f) >= 4 && f[0] == "pageflag" && f[3] != "BROKEN" {
			t.Fatalf("pageflag verdict %q", f[3])
		}
		if len(f) >= 4 && f[0] == "kiobuf" && f[3] != "CORRECT" {
			t.Fatalf("kiobuf verdict %q", f[3])
		}
	}
}

func TestDivergenceShape(t *testing.T) {
	out := sweepOutput(t, func(w *strings.Builder) error { return Divergence(w) })
	if !strings.Contains(out, "E10") {
		t.Fatalf("missing header:\n%s", out)
	}
	// The last row must show refcount < kiobuf.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var last []string
	for _, l := range lines {
		f := strings.Fields(l)
		if len(f) == 3 && strings.HasPrefix(f[0], "2.00") {
			last = f
		}
	}
	if len(last) != 3 {
		t.Fatalf("no 2.00 row:\n%s", out)
	}
	if last[1] == last[2] {
		t.Fatalf("refcount (%s) did not diverge from kiobuf (%s)", last[1], last[2])
	}
}

func TestPIODMACrossover(t *testing.T) {
	out := sweepOutput(t, func(w *strings.Builder) error { return PIODMA(w) })
	// 64B must go to SHM, 1KiB to DMA — the companion's ~128B switch.
	var shm64, dma1k bool
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if len(f) >= 6 && f[0] == "64B" && f[5] == "SHM" {
			shm64 = true
		}
		if len(f) >= 6 && f[0] == "1KiB" && f[5] == "DMA" {
			dma1k = true
		}
	}
	if !shm64 || !dma1k {
		t.Fatalf("crossover missing (shm64=%v dma1k=%v):\n%s", shm64, dma1k, out)
	}
}

func TestLatencyOrdering(t *testing.T) {
	out := sweepOutput(t, func(w *strings.Builder) error { return Latency(w) })
	if !strings.Contains(out, "E12") {
		t.Fatalf("missing header:\n%s", out)
	}
	// For small transfers PIO must be the fastest column.
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if len(f) == 4 && f[0] == "64" {
			var pio, rdma, send float64
			if _, err := fscan(f[1], &pio); err != nil {
				t.Fatal(err)
			}
			if _, err := fscan(f[2], &rdma); err != nil {
				t.Fatal(err)
			}
			if _, err := fscan(f[3], &send); err != nil {
				t.Fatal(err)
			}
			if !(pio < rdma && rdma < send) {
				t.Fatalf("ordering violated: pio=%v rdma=%v send=%v", pio, rdma, send)
			}
		}
	}
}

func TestAblationEvictionPolicy(t *testing.T) {
	classMisses, _, err := evictionWorkload(regcache.PolicyClassLRU)
	if err != nil {
		t.Fatal(err)
	}
	lruMisses, _, err := evictionWorkload(regcache.PolicyGlobalLRU)
	if err != nil {
		t.Fatal(err)
	}
	if classMisses >= lruMisses {
		t.Fatalf("class policy (%d misses) not better than global LRU (%d)", classMisses, lruMisses)
	}
}

func TestAblationSecondChance(t *testing.T) {
	withMF, _, err := secondChanceWorkload(false)
	if err != nil {
		t.Fatal(err)
	}
	withoutMF, _, err := secondChanceWorkload(true)
	if err != nil {
		t.Fatal(err)
	}
	if withMF >= withoutMF {
		t.Fatalf("second chance (%d major faults) not better than none (%d)", withMF, withoutMF)
	}
}

func TestAblationIgnoreLocks(t *testing.T) {
	c, total, err := ignoreLocksRun("pageflag")
	if err != nil {
		t.Fatal(err)
	}
	if c == total {
		t.Fatal("pageflag survived a kernel that ignores PG_* flags")
	}
	c, total, err = ignoreLocksRun("kiobuf")
	if err != nil {
		t.Fatal(err)
	}
	if c != total {
		t.Fatalf("kiobuf lost pages (%d/%d) — pins must hold", c, total)
	}
}

// fscan parses a float in table cells.
func fscan(s string, out *float64) (int, error) {
	return fmt.Sscanf(s, "%f", out)
}

func TestBigphysSlowdownShape(t *testing.T) {
	tb, err := bigphysTransfer(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := kiobufTransfer(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if tb <= tk {
		t.Fatalf("bigphys staging (%v) should cost more than registered transfer (%v)", tb, tk)
	}
}

func TestRegCachePointShape(t *testing.T) {
	cached, hit, err := regCachePoint(20, 4, 16<<10, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	uncached, _, err := regCachePoint(20, 4, 16<<10, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if cached >= uncached {
		t.Fatalf("cached (%v µs) not faster than uncached (%v µs)", cached, uncached)
	}
	if hit < 50 {
		t.Fatalf("hit rate %v%% at full reuse", hit)
	}
}

func TestRegConcPointShape(t *testing.T) {
	kops, hit, err := regConcPoint(4, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if kops <= 0 {
		t.Fatalf("throughput %v kops/s", kops)
	}
	// 15/16 of the ops target the hot set; the hit rate must reflect it.
	if hit < 80 {
		t.Fatalf("hit rate %v%% on a 1/16-miss workload", hit)
	}
}

func TestRegConcOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock sweep")
	}
	out := sweepOutput(t, func(w *strings.Builder) error { return RegConc(w) })
	for _, want := range []string{"E15", "goroutines", "kops/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMsgRatePointShape(t *testing.T) {
	kmsg, simUS, err := msgRatePoint(4, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if kmsg <= 0 {
		t.Fatalf("rate %v kmsg/s", kmsg)
	}
	if simUS <= 0 {
		t.Fatalf("virtual cost %v µs/msg", simUS)
	}
}

func TestMsgRateOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock sweep")
	}
	out := sweepOutput(t, func(w *strings.Builder) error { return MsgRate(w) })
	for _, want := range []string{"E16", "VIs", "kmsg/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestProtocolPointShapes(t *testing.T) {
	// Cold zero-copy must lose to eager at 4 KiB and win at 1 MiB (warm).
	eagerSmall, err := protocolPoint(4<<10, "eager", true)
	if err != nil {
		t.Fatal(err)
	}
	zcColdSmall, err := protocolPoint(4<<10, "zerocopy", false)
	if err != nil {
		t.Fatal(err)
	}
	if zcColdSmall >= eagerSmall {
		t.Fatalf("cold zero-copy (%v MB/s) beat eager (%v MB/s) at 4KiB", zcColdSmall, eagerSmall)
	}
	eagerBig, err := protocolPoint(1<<20, "eager", true)
	if err != nil {
		t.Fatal(err)
	}
	zcWarmBig, err := protocolPoint(1<<20, "zerocopy", true)
	if err != nil {
		t.Fatal(err)
	}
	if zcWarmBig <= eagerBig {
		t.Fatalf("warm zero-copy (%v MB/s) lost to eager (%v MB/s) at 1MiB", zcWarmBig, eagerBig)
	}
}

func TestAblationsRunClean(t *testing.T) {
	out := sweepOutput(t, func(w *strings.Builder) error { return Ablations(w) })
	for _, want := range []string{"A1", "A2", "A3", "A4", "immediate data", "RELIABLE"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestBigphysOutput(t *testing.T) {
	out := sweepOutput(t, func(w *strings.Builder) error { return Bigphys(w) })
	if !strings.Contains(out, "E13") || !strings.Contains(out, "speedup") {
		t.Fatalf("bad output:\n%s", out)
	}
}

// TestRendezvousPointShape checks the E19 headline at one point: on
// swap-cold buffers the pipelined rendezvous must beat the serialized
// one by at least 1.5x, and the trace spans must prove substantial
// registration/transfer overlap.
func TestRendezvousPointShape(t *testing.T) {
	ser, err := rendezvousRun(256*1024, -1, true)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := rendezvousRun(256*1024, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if ser.hasSpan {
		t.Error("serialized run emitted chunk spans")
	}
	if !pipe.hasSpan {
		t.Fatal("pipelined run emitted no chunk spans")
	}
	speedup := float64(ser.elapsed) / float64(pipe.elapsed)
	if speedup < 1.5 {
		t.Errorf("swap-cold speedup = %.2fx, want >= 1.5x (serialized %v, pipelined %v)",
			speedup, ser.elapsed, pipe.elapsed)
	}
	if pipe.overlap < 0.5 {
		t.Errorf("overlap fraction = %.2f, want >= 0.5", pipe.overlap)
	}
}

// TestRendezvousOutput smoke-runs the full E19 table.
func TestRendezvousOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full E19 sweep")
	}
	out := sweepOutput(t, func(w *strings.Builder) error { return Rendezvous(w) })
	for _, want := range []string{"E19", "swap-cold", "256KiB", "1MiB", "overlap"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// TestChaosStripeClass runs the E17 multi-rail class end to end: the
// class's own contract (verified failover deliveries, typed
// all-rails-down failures, full recovery, zero corruption/leaks) is the
// assert — an error from the runner is a failed invariant.
func TestChaosStripeClass(t *testing.T) {
	res, err := chaosStripe()
	if err != nil {
		t.Fatal(err)
	}
	if res.ok == 0 || res.loud == 0 || res.injected == 0 {
		t.Fatalf("scoreboard %+v: a dead schedule slipped past the runner", res)
	}
}

// TestChaosBatchClass runs the E17 small-message batching class end to
// end: exactly-once completion for every descriptor of every batch
// under mid-batch lane and link faults, verified inline payloads, and
// no stranded waiters.
func TestChaosBatchClass(t *testing.T) {
	res, err := chaosBatch()
	if err != nil {
		t.Fatal(err)
	}
	if res.ok == 0 || res.loud == 0 || res.injected == 0 {
		t.Fatalf("scoreboard %+v: a dead schedule slipped past the runner", res)
	}
}

// TestSmallMsgPointShapes pins E24's headline claims at point level: the
// inline path beats the staged path by at least 2× at 64 B on the
// virtual clock, and batched posting divides doorbells/op by the batch
// size.  (Wakeups/op is scheduling-sensitive at point scale, so only
// its sanity range is asserted here; the table shows the curve.)
func TestSmallMsgPointShapes(t *testing.T) {
	in, err := smallMsgPathPoint(64, true, 1024)
	if err != nil {
		t.Fatal(err)
	}
	st, err := smallMsgPathPoint(64, false, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if st < 2*in {
		t.Fatalf("inline %v sim-µs/msg vs staged %v: speedup %.2f×, want >= 2×", in, st, st/in)
	}
	db1, wk1, _, err := smallMsgBatchPoint(1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	db8, wk8, _, err := smallMsgBatchPoint(8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if db1 < 0.99 || db1 > 1.01 {
		t.Fatalf("unbatched doorbells/op = %v, want 1", db1)
	}
	if db8 < 0.115 || db8 > 0.135 {
		t.Fatalf("batch-8 doorbells/op = %v, want 1/8", db8)
	}
	for _, wk := range []float64{wk1, wk8} {
		if wk <= 0 || wk > 1.2 {
			t.Fatalf("wakeups/op out of sanity range: %v and %v", wk1, wk8)
		}
	}
}

func TestSmallMsgOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	out := sweepOutput(t, func(w *strings.Builder) error { return SmallMsg(w) })
	for _, want := range []string{"E24a", "E24b", "speedup", "doorbells/op", "CQ wakeups/op"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
