// Command viabench regenerates the evaluation's tables and figures as
// parameter sweeps over the simulated stack.
//
// Usage:
//
//	viabench -table=regcost|deregcost|survival|protocols|regcache|regconc|multireg|divergence|msgrate|nopin|obs|all
//
// The obs table (E18, the observability layer's latency decomposition)
// accepts two extra flags: -trace=out.json exports its event trace as
// Chrome trace_event JSON (load in chrome://tracing or Perfetto), and
// -metrics dumps the full metrics registry after the table.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
)

func main() {
	table := flag.String("table", "all", "which table/figure to regenerate")
	tracePath := flag.String("trace", "", "obs: write Chrome trace_event JSON to this file")
	metricsDump := flag.Bool("metrics", false, "obs: dump the metrics registry after the table")
	flag.Parse()

	obs := func(w io.Writer) error {
		var mw io.Writer
		if *metricsDump {
			mw = w
		}
		return bench.ObsRun(w, *tracePath, mw)
	}
	runners := map[string]func(io.Writer) error{
		"obs":        obs,
		"regcost":    bench.RegCost,
		"deregcost":  bench.DeregCost,
		"survival":   bench.Survival,
		"protocols":  bench.Protocols,
		"regcache":   bench.RegCache,
		"regconc":    bench.RegConc,
		"multireg":   bench.MultiReg,
		"divergence": bench.Divergence,
		"piodma":     bench.PIODMA,
		"latency":    bench.Latency,
		"ablation":   bench.Ablations,
		"bigphys":    bench.Bigphys,
		"msgrate":    bench.MsgRate,
		"smallmsg":   bench.SmallMsg,
		"chaos":      bench.Chaos,
		"rendezvous": bench.Rendezvous,
		"remap":      bench.Remap,
		"nopin":      bench.NoPin,
		"multirail":  bench.Multirail,
	}
	order := []string{"regcost", "deregcost", "survival", "protocols", "regcache", "regconc", "multireg", "divergence", "piodma", "latency", "ablation", "bigphys", "msgrate", "smallmsg", "chaos", "rendezvous", "remap", "nopin", "multirail", "obs"}

	run := func(name string) {
		if err := runners[name](os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "viabench %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *table == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	if _, ok := runners[*table]; !ok {
		fmt.Fprintf(os.Stderr, "viabench: unknown table %q (choose from %v or all)\n", *table, order)
		os.Exit(2)
	}
	run(*table)
}
