// Package pressure generates the memory pressure the locktest experiment
// needs: the *allocator* process of §3.1, which "allocates as much memory
// as possible forcing a large amount of pages to be swapped out", plus
// graded pressure levels for the survival sweep (experiment E5).
package pressure

import (
	"errors"
	"fmt"

	"repro/internal/mm"
	"repro/internal/pgtable"
	"repro/internal/vma"
)

// Result summarizes one pressure run.
type Result struct {
	// PagesRequested is the size of the allocation attempted.
	PagesRequested int
	// PagesTouched is how many pages were actually written before the
	// allocator stopped (OOM or completion).
	PagesTouched int
	// SwapOuts is the number of pages the kernel evicted during the run.
	SwapOuts uint64
	// HitOOM reports whether the allocator died of OOM.
	HitOOM bool
}

// Allocator runs one allocator process: it maps `pages` pages, writes to
// every one (forcing copy-on-write/demand-zero and thereby eviction of
// other memory), then exits, releasing everything.  Per the paper, the
// demand paging means it must *write* to consume physical memory.
func Allocator(k *mm.Kernel, pages int) (Result, error) {
	res := Result{PagesRequested: pages}
	before := k.Stats().SwapOuts
	as := k.CreateProcess("allocator", false)
	defer func() { _ = k.DestroyProcess(as) }()

	addr, err := k.MMap(as, pages, vma.Read|vma.Write)
	if err != nil {
		return res, err
	}
	// Touch page by page so an OOM mid-way still counts progress.
	for i := 0; i < pages; i++ {
		if err := k.Touch(as, addr+pgtable.VAddr(i*pgPageSize), 1); err != nil {
			if errors.Is(err, mm.ErrOOM) {
				res.HitOOM = true
				break
			}
			return res, err
		}
		res.PagesTouched++
	}
	res.SwapOuts = k.Stats().SwapOuts - before
	return res, nil
}

// pgPageSize mirrors phys.PageSize without importing it (kept local so
// the loop reads naturally in address units).
const pgPageSize = 1 << 12

// Level applies pressure proportional to RAM: fraction 1.0 touches as
// many pages as the node has frames; 1.5 touches half again as many.
// Returns the allocator result.
func Level(k *mm.Kernel, fraction float64) (Result, error) {
	if fraction < 0 {
		return Result{}, fmt.Errorf("pressure: negative fraction %f", fraction)
	}
	pages := int(fraction * float64(k.Config().RAMPages))
	if pages == 0 {
		return Result{}, nil
	}
	return Allocator(k, pages)
}

// Hog is a long-lived allocator whose footprint grows across calls, for
// experiments that need cumulative pressure (E10's decay curve).  Unlike
// Allocator it does not exit between steps, so earlier allocations keep
// competing for frames.
type Hog struct {
	k     *mm.Kernel
	as    *mm.AddressSpace
	spans []span
}

type span struct {
	addr  pgtable.VAddr
	pages int
}

// NewHog starts the hog process.
func NewHog(k *mm.Kernel) *Hog {
	return &Hog{k: k, as: k.CreateProcess("hog", false)}
}

// Grow extends the hog by pages pages and touches them all.  An OOM
// stops the touch loop but is not an error (the hog simply holds what it
// got).  It reports how many new pages were touched.
func (h *Hog) Grow(pages int) (int, error) {
	addr, err := h.k.MMap(h.as, pages, vma.Read|vma.Write)
	if err != nil {
		return 0, err
	}
	h.spans = append(h.spans, span{addr: addr, pages: pages})
	touched := 0
	for i := 0; i < pages; i++ {
		if err := h.k.Touch(h.as, addr+pgtable.VAddr(i*pgPageSize), 1); err != nil {
			if errors.Is(err, mm.ErrOOM) {
				return touched, nil
			}
			return touched, err
		}
		touched++
	}
	return touched, nil
}

// Churn re-touches every span the hog holds, keeping its working set hot
// so other processes' pages stay the preferred eviction victims.
func (h *Hog) Churn() error {
	for _, s := range h.spans {
		for i := 0; i < s.pages; i++ {
			if err := h.k.Touch(h.as, s.addr+pgtable.VAddr(i*pgPageSize), 1); err != nil {
				if errors.Is(err, mm.ErrOOM) {
					return nil
				}
				return err
			}
		}
	}
	return nil
}

// Pages reports the hog's total mapped footprint.
func (h *Hog) Pages() int {
	n := 0
	for _, s := range h.spans {
		n += s.pages
	}
	return n
}

// Release ends the hog and frees everything it held.
func (h *Hog) Release() error {
	return h.k.DestroyProcess(h.as)
}

// Exhaust keeps allocating until OOM, in chunks, and reports the total
// number of pages it managed to touch — the paper's "allocates as much
// memory as possible".
func Exhaust(k *mm.Kernel) (Result, error) {
	total := Result{}
	// RAM + swap bounds how far an allocator can possibly get.
	bound := k.Config().RAMPages + k.Config().SwapPages
	res, err := Allocator(k, bound)
	if err != nil {
		return total, err
	}
	return res, nil
}
