package bench

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/msg"
	"repro/internal/report"
)

// remapSizes is the sweep for the ownership-transfer crossover figure.
// All are page multiples — the regime the remap path is built for; the
// tail column re-runs each size with 37 extra bytes to price the
// unaligned-tail scatter fallback.
var remapSizes = []int{16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}

// Remap regenerates E23: ownership-transfer (page-remap) receive
// bandwidth against the copying protocols.  One-copy pays a CPU copy on
// both sides of the wire; remap exchanges page frames, so past the
// crossover its bandwidth tracks the DMA engine, not memcpy.  The
// swap-cold column prices the worst case — both buffers evicted, so
// donation and registration page everything back in first — and the
// tail column shows the cost of falling back to scatter for a 37-byte
// unaligned tail.
func Remap(w io.Writer) error {
	s := report.Series{
		Title: "E23: ownership-transfer (remap) crossover — simulated MB/s vs message size",
		Note: "remap beats one-copy for page-aligned payloads >= 64 KiB; " +
			"the unaligned tail costs one scatter copy of the last page; " +
			"swap-backed, remap pays page-ins only on the send side (delivery adopts frames instead of faulting the destination in), one-copy on both",
		XLabel: "message",
		Lines:  []string{"onecopy", "zerocopy-warm", "remap", "remap-tail+37", "onecopy-swapcold", "remap-swapcold"},
	}
	for _, size := range remapSizes {
		row := make([]any, 0, 6)
		for _, v := range []struct {
			size     int
			proto    msg.Protocol
			swapCold bool
		}{
			{size, msg.OneCopy, false},
			{size, msg.ZeroCopy, false},
			{size, msg.Remap, false},
			{size + 37, msg.Remap, false},
			{size, msg.OneCopy, true},
			{size, msg.Remap, true},
		} {
			bw, err := remapPoint(v.size, v.proto, v.swapCold)
			if err != nil {
				return fmt.Errorf("%s %s swapcold=%v: %w", v.proto, report.Bytes(v.size), v.swapCold, err)
			}
			row = append(row, bw)
		}
		s.AddPoint(report.Bytes(size), row...)
	}
	s.Fprint(w)
	return nil
}

// remapPoint measures one steady-state transfer: a warm-up pass resolves
// demand-zero faults and cold registrations, then the measured pass runs
// over the same buffers.  swapCold evicts both nodes' memory between the
// passes, so the measured transfer pays the page-in on top.
func remapPoint(size int, p msg.Protocol, swapCold bool) (float64, error) {
	c, err := cluster.New(protocolClusterConfig())
	if err != nil {
		return 0, err
	}
	a, b, err := c.EndpointPair(0, 1, 0)
	if err != nil {
		return 0, err
	}
	src, err := a.Process().Malloc(size)
	if err != nil {
		return 0, err
	}
	dst, err := b.Process().Malloc(size)
	if err != nil {
		return 0, err
	}
	if err := src.FillPattern(0x3c); err != nil {
		return 0, err
	}
	if err := dst.Touch(); err != nil {
		return 0, err
	}
	if _, err := transferOnce(c.Meter, a, b, src, dst, p); err != nil {
		return 0, err
	}
	if swapCold {
		// Cached payload registrations keep their pages pinned (that is
		// the warm path); drop them so the sweep can evict, then run
		// multiple full clock sweeps — the first visit to a frame only
		// clears its accessed bit (second chance), later visits evict.
		if _, err := a.Cache().Flush(); err != nil {
			return 0, err
		}
		if _, err := b.Cache().Flush(); err != nil {
			return 0, err
		}
		for _, n := range c.Nodes {
			ram := n.Kernel.Config().RAMPages
			for i := 0; i < 4; i++ {
				n.Kernel.SwapOut(ram)
			}
		}
	}
	d, err := transferOnce(c.Meter, a, b, src, dst, p)
	if err != nil {
		return 0, err
	}
	if bad, err := dst.VerifyPattern(0x3c); err != nil || len(bad) > 0 {
		return 0, fmt.Errorf("remap point corrupted delivery (bad pages %v): %v", bad, err)
	}
	return bandwidthMBs(size, d), nil
}
