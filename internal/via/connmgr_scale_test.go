package via

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/leakcheck"
)

// waitPending polls until the listener's queue holds want requests.
func waitPending(t *testing.T, l *Listener, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Pending != want {
		if time.Now().After(deadline) {
			t.Fatalf("pending = %d, want %d", l.Stats().Pending, want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestBacklogFullRefusesDial(t *testing.T) {
	r := newRig(t)
	l, err := r.net.ListenBacklog(r.nicB, "svc", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		vi, _ := r.nicA.CreateVI(tagA)
		wg.Add(1)
		go func() {
			defer wg.Done()
			// These stay queued until the listener closes them out.
			_ = r.net.Dial(vi, "nodeB", "svc", 2*time.Second)
		}()
	}
	waitPending(t, l, 4)
	vi, _ := r.nicA.CreateVI(tagA)
	if err := r.net.Dial(vi, "nodeB", "svc", time.Second); !errors.Is(err, ErrBacklogFull) {
		t.Fatalf("dial on full backlog: err = %v, want ErrBacklogFull", err)
	}
	if st := l.Stats(); st.Refused != 1 {
		t.Fatalf("refused = %d, want 1", st.Refused)
	}
	// Drain the queued dials so the goroutines exit promptly.
	for i := 0; i < 4; i++ {
		sv, _ := r.nicB.CreateVI(tagB)
		if err := l.Accept(sv); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
}

// TestBacklogPrunesAbandoned is the churn test: a backlog clogged with
// dials whose owners already timed out must not refuse fresh dials —
// enqueue prunes the corpses eagerly instead of waiting for an Accept
// to trip over them.
func TestBacklogPrunesAbandoned(t *testing.T) {
	r := newRig(t)
	l, err := r.net.ListenBacklog(r.nicB, "svc", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 4; i++ {
		vi, _ := r.nicA.CreateVI(tagA)
		if err := r.net.Dial(vi, "nodeB", "svc", time.Millisecond); !errors.Is(err, ErrConnTimeout) {
			t.Fatalf("dial %d: err = %v, want ErrConnTimeout", i, err)
		}
	}
	// The queue is physically full of abandoned requests.
	if st := l.Stats(); st.Pending != 4 {
		t.Fatalf("pending = %d, want 4 (abandoned entries linger)", st.Pending)
	}
	// A fresh dial must squeeze in via pruning, not bounce.
	done := make(chan error, 1)
	vi, _ := r.nicA.CreateVI(tagA)
	go func() { done <- r.net.Dial(vi, "nodeB", "svc", 2*time.Second) }()
	waitPending(t, l, 1)
	sv, _ := r.nicB.CreateVI(tagB)
	if err := l.Accept(sv); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("fresh dial after prune: %v", err)
	}
	st := l.Stats()
	if st.Pruned != 4 {
		t.Fatalf("pruned = %d, want 4", st.Pruned)
	}
	if st.Refused != 0 {
		t.Fatalf("refused = %d, want 0", st.Refused)
	}
	if vi.State() != VIConnected {
		t.Fatal("fresh dial's VI not connected")
	}
}

// TestConnMgrStress10k drives 10k concurrent VI setups through one
// listener with sharded accepts, while a side churn of doomed
// short-timeout dials exercises pruning, all under the leak bracket.
// The race detector (CI runs this file with -race) is the real assert.
func TestConnMgrStress10k(t *testing.T) {
	leakcheck.Check(t)
	total := 10000
	if testing.Short() {
		total = 1000
	}
	const shards = 8
	const dialers = 32

	r := newRig(t)
	l, err := r.net.ListenBacklog(r.nicB, "pool", 256)
	if err != nil {
		t.Fatal(err)
	}

	var accepted atomic.Int64
	var acceptWG sync.WaitGroup
	acceptWG.Add(shards)
	for s := 0; s < shards; s++ {
		go func() {
			defer acceptWG.Done()
			for {
				sv, err := r.nicB.CreateVI(tagB)
				if err != nil {
					t.Error(err)
					return
				}
				switch err := l.Accept(sv); {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, ErrListenerClosed):
					return
				default:
					t.Errorf("accept: %v", err)
					return
				}
			}
		}()
	}

	var connected, refusedRetries atomic.Int64
	var dialWG sync.WaitGroup
	dialWG.Add(dialers)
	per := total / dialers
	for d := 0; d < dialers; d++ {
		go func(d int) {
			defer dialWG.Done()
			for i := 0; i < per; i++ {
				vi, err := r.nicA.CreateVI(tagA)
				if err != nil {
					t.Error(err)
					return
				}
				for {
					err := r.net.Dial(vi, "nodeB", "pool", 5*time.Second)
					if errors.Is(err, ErrBacklogFull) {
						// Typed refusal: back off and retry, as a real
						// client would.
						refusedRetries.Add(1)
						time.Sleep(50 * time.Microsecond)
						continue
					}
					if err != nil {
						t.Errorf("dial: %v", err)
						return
					}
					connected.Add(1)
					break
				}
				// Churn: every 64th dial is doomed — its owner gives up
				// almost immediately, leaving an abandoned queue entry
				// for pruning/skipping to clean out.
				if i%64 == 0 {
					doomed, _ := r.nicA.CreateVI(tagA)
					_ = r.net.Dial(doomed, "nodeB", "pool", time.Microsecond)
				}
			}
		}(d)
	}

	dialWG.Wait()
	l.Close()
	acceptWG.Wait()

	want := int64(dialers * per)
	if got := connected.Load(); got != want {
		t.Fatalf("connected = %d, want %d", got, want)
	}
	st := l.Stats()
	t.Logf("accepted=%d pruned=%d refused=%d (retried %d) pending=%d",
		st.Accepted, st.Pruned, st.Refused, refusedRetries.Load(), st.Pending)
	if int64(st.Accepted) < want {
		t.Fatalf("listener accepted = %d, want >= %d", st.Accepted, want)
	}
}

func TestVIPoolReuseAndHealth(t *testing.T) {
	r := newRig(t)
	dials := 0
	p := NewVIPool(8, func() (*VI, error) {
		dials++
		cv, err := r.nicA.CreateVI(tagA)
		if err != nil {
			return nil, err
		}
		sv, err := r.nicB.CreateVI(tagB)
		if err != nil {
			return nil, err
		}
		if err := r.net.Connect(cv, sv); err != nil {
			return nil, err
		}
		return cv, nil
	})
	v1, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Put(v1) {
		t.Fatal("healthy VI not retained")
	}
	v2, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v1 {
		t.Fatal("pool did not reuse the idle VI")
	}
	if st := p.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	// An errored VI is dropped on Put, never resurrected.
	v2.enterError(ErrLinkDown)
	if p.Put(v2) {
		t.Fatal("errored VI retained")
	}
	// One that errors while pooled is dropped on Get.
	v3, _ := p.Get()
	p.Put(v3)
	v3.enterError(ErrLinkDown)
	v4, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if v4 == v3 {
		t.Fatal("pool handed out an errored VI")
	}
	if st := p.Stats(); st.Discards != 2 {
		t.Fatalf("discards = %d, want 2", st.Discards)
	}
	p.Close(func(v *VI) { _ = r.net.Disconnect(v) })
	if _, err := p.Get(); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("get on closed pool: %v", err)
	}
}

// TestLinkSnapshotCOW exercises the copy-on-write partition set: reads
// (linkUp) race freely against flapping writers with no lock, and the
// counts stay exact.
func TestLinkSnapshotCOW(t *testing.T) {
	r := newRig(t)
	if r.net.DownLinks() != 0 {
		t.Fatal("fresh fabric has down links")
	}
	r.net.SetLinkDown("nodeA", "nodeB")
	r.net.SetLinkDown("nodeB", "nodeA") // idempotent, unordered key
	if r.net.DownLinks() != 1 {
		t.Fatalf("down = %d, want 1", r.net.DownLinks())
	}
	if r.net.linkUp(r.nicA, r.nicB) {
		t.Fatal("severed link reported up")
	}
	if !r.net.linkUp(r.nicA, r.nicA) {
		t.Fatal("loopback reported down")
	}
	r.net.SetLinkUp("nodeA", "nodeB")
	if r.net.DownLinks() != 0 {
		t.Fatalf("down = %d after heal, want 0", r.net.DownLinks())
	}
	if !r.net.linkUp(r.nicA, r.nicB) {
		t.Fatal("healed link reported down")
	}

	// Hammer: concurrent flappers and readers; the race detector and
	// the final count are the asserts.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.net.linkUp(r.nicA, r.nicB)
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		r.net.SetLinkDown("nodeA", "nodeB")
		r.net.SetLinkUp("nodeA", "nodeB")
	}
	close(stop)
	wg.Wait()
	if r.net.DownLinks() != 0 {
		t.Fatalf("down = %d after flapping, want 0", r.net.DownLinks())
	}
}
