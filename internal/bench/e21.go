package bench

// E21: the collective scaling sweep.  One world per rank count, built
// the way a large MPI job should be on this stack: lazy endpoint
// pairing (log-structured collectives touch O(n log n) of the O(n²)
// pairs), one shared-CQ poller per rank (goroutines grow with ranks,
// not with VIs), RDMA-eager small messages, and a rank-wide shared
// registration cache (a buffer registered towards one peer is a hit
// towards the next — the MPICH2 premise the tentpole builds on).
//
// Reported per rank count, all on the virtual clock:
//   - barrier and 8-byte allreduce latency (the ~O(log n) headline),
//   - ring allreduce of a 32 KiB vector (bandwidth-optimal path;
//     capped at 256 ranks — 2(n-1) ring steps at 1024 ranks measure
//     patience, not the algorithm),
//   - binomial bcast of 64 KiB (the registration-reuse workload),
//   - the registration-cache hit rate across bcast iterations after
//     the first (the >90% acceptance target),
//   - completions drained through the muxes, total VIs, and live
//     goroutines (the O(ranks)-not-O(VIs) proof).

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mm"
	"repro/internal/mpi"
	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/report"
)

const (
	e21VecElems  = 4096      // 32 KiB of int64
	e21BcastSize = 64 * 1024 // one-copy sized: every send registers
	e21Iters     = 3         // timed iterations per operation
	e21RingCap   = 256       // largest world that runs the ring vector path
)

// CollectiveScale regenerates E21.  smoke restricts the sweep to the
// small rank counts CI can afford; algo selects the collective family
// (mpi.AlgoLinear is the ablation baseline).
func CollectiveScale(w io.Writer, smoke bool, algo mpi.Algo) error {
	rankCounts := []int{16, 64, 256, 1024}
	if smoke {
		rankCounts = []int{16, 64}
	}
	s := report.Table{
		Title: fmt.Sprintf("E21: collective scaling — %s algorithms over lazy pairing, shared-CQ muxes and RDMA-eager rings", algoName(algo)),
		Note: fmt.Sprintf("virtual µs of work per rank per operation (the clock is a shared total-work meter, DESIGN.md §9 — per-rank work is the latency proxy, O(log n) for the log family); %d timed iterations after warm-up; vec = %d int64 ring allreduce (ranks ≤ %d); bcast = %s binomial; hit%% = regcache rate after the first bcast",
			e21Iters, e21VecElems, e21RingCap, report.Bytes(e21BcastSize)),
		Headers: []string{"ranks", "pairs", "VIs", "goroutines",
			"barrier µs/rk", "allred-8B µs/rk", "vec-32KiB µs/rk", "bcast-64KiB µs/rk", "hit %", "drained"},
	}
	for _, ranks := range rankCounts {
		if err := collectivePoint(&s, ranks, algo); err != nil {
			return fmt.Errorf("e21 %d ranks: %w", ranks, err)
		}
	}
	s.Fprint(w)
	return nil
}

func algoName(a mpi.Algo) string {
	if a == mpi.AlgoLinear {
		return "linear (ablation)"
	}
	return "log-step"
}

// collectivePoint measures one rank count and appends its row.
func collectivePoint(s *report.Table, ranks int, algo mpi.Algo) error {
	c := cluster.MustNew(cluster.Config{
		Nodes:    4,
		Strategy: core.StrategyKiobuf,
		Kernel: mm.Config{
			RAMPages:   8192 + ranks*64,
			SwapPages:  8192,
			ClockBatch: 128, SwapBatch: 32,
		},
		TPTSlots: 4096 + ranks*32,
	})
	w, err := mpi.NewWorldOpts(c, ranks, mpi.WorldOptions{
		Lazy:     true,
		SharedCQ: true,
		Algo:     algo,
		Endpoint: msg.Options{RDMAEager: true, RingSlots: 4, SlotBytes: 4096},
	})
	if err != nil {
		return err
	}
	defer w.Close()

	// Per-rank persistent buffers: reusing the same virtual addresses
	// across iterations is precisely what the shared cache rewards.
	vec := make([][]int64, ranks)
	bcast := make([]*proc.Buffer, ranks)
	for i := 0; i < ranks; i++ {
		vec[i] = make([]int64, e21VecElems)
		r, err := w.Rank(i)
		if err != nil {
			return err
		}
		if bcast[i], err = r.Process().Malloc(e21BcastSize); err != nil {
			return err
		}
		if err := bcast[i].Touch(); err != nil {
			return err
		}
	}

	// Warm-up: pairs the lazy endpoints and fills the caches.
	if err := e21All(w, func(r *mpi.Rank) error { return r.Barrier() }); err != nil {
		return err
	}
	goroutines := runtime.NumGoroutine()

	barrierUS, err := e21Time(c, w, e21Iters, func(r *mpi.Rank) error {
		return r.Barrier()
	})
	if err != nil {
		return err
	}

	if err := e21All(w, func(r *mpi.Rank) error { // warm-up
		_, err := r.Allreduce(int64(r.ID()), mpi.OpSum)
		return err
	}); err != nil {
		return err
	}
	allredUS, err := e21Time(c, w, e21Iters, func(r *mpi.Rank) error {
		_, err := r.Allreduce(int64(r.ID()), mpi.OpSum)
		return err
	})
	if err != nil {
		return err
	}

	vecUS := 0.0
	if ranks <= e21RingCap {
		if err := e21All(w, func(r *mpi.Rank) error { // warm-up
			_, err := r.AllreduceVec(vec[r.ID()], mpi.OpSum)
			return err
		}); err != nil {
			return err
		}
		if vecUS, err = e21Time(c, w, e21Iters, func(r *mpi.Rank) error {
			_, err := r.AllreduceVec(vec[r.ID()], mpi.OpSum)
			return err
		}); err != nil {
			return err
		}
	}

	if err := e21All(w, func(r *mpi.Rank) error { // warm-up registers bcast bufs
		return r.Bcast(0, bcast[r.ID()])
	}); err != nil {
		return err
	}
	before := w.CacheStats()
	bcastUS, err := e21Time(c, w, e21Iters, func(r *mpi.Rank) error {
		return r.Bcast(0, bcast[r.ID()])
	})
	if err != nil {
		return err
	}
	after := w.CacheStats()
	hits := after.Hits - before.Hits
	misses := after.Misses - before.Misses
	hitPct := 0.0
	if hits+misses > 0 {
		hitPct = 100 * float64(hits) / float64(hits+misses)
	}

	mux := w.MuxStats()
	perRank := func(us float64) float64 { return us / float64(ranks) }
	s.AddRow(ranks, w.Pairs(), mux.VIs, goroutines,
		perRank(barrierUS), perRank(allredUS), perRank(vecUS), perRank(bcastUS),
		hitPct, mux.Drained)
	return nil
}

// e21All drives fn on every rank concurrently and returns the first
// error.
func e21All(w *mpi.World, fn func(r *mpi.Rank) error) error {
	var wg sync.WaitGroup
	errs := make([]error, w.Size())
	for i := 0; i < w.Size(); i++ {
		r, err := w.Rank(i)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(i int, r *mpi.Rank) {
			defer wg.Done()
			errs[i] = fn(r)
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// e21Time runs iters collective iterations and returns the virtual
// microseconds per iteration.
func e21Time(c *cluster.Cluster, w *mpi.World, iters int, fn func(r *mpi.Rank) error) (float64, error) {
	start := c.Meter.Now()
	for i := 0; i < iters; i++ {
		if err := e21All(w, fn); err != nil {
			return 0, err
		}
	}
	elapsed := c.Meter.Now() - start
	return elapsed.Micros() / float64(iters), nil
}
