package bench

// The E17 "batch" class: small-message batching chaos at the raw VIA
// layer.  Each round builds a fresh VI pair over two engine-backed
// NICs, posts a burst of inline sends through the batched paths —
// PostSendBatch on even rounds, doorbell-coalesced PostSend bursts on
// odd rounds — and lets lane faults, lane stalls and link cuts land in
// the middle of the batches.  The contract is per descriptor:
//
//   - exactly-once completion — every posted descriptor (send and
//     receive) surfaces on its CQ exactly once with a terminal status;
//     a batch whose first descriptor faults must still flush the rest
//     loudly, never drop or double-complete one;
//   - no stranded waiters — every posted send reaches Wait within the
//     watchdog deadline even when the fault hits a coalesced token;
//   - zero silent corruption — every successfully delivered inline
//     payload verifies byte for byte.
//
// The scoreboard: ok = verified deliveries, loud = typed send faults
// plus refused posts on an errored VI, injected = injector hits + link
// cuts.  A soak in which the batch counters never move, or no fault
// ever lands, is a dead schedule.

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/faultinject"
	"repro/internal/leakcheck"
	"repro/internal/phys"
	"repro/internal/simtime"
	"repro/internal/via"
)

const (
	chaosBatchRounds = 24
	chaosBatchMsgs   = 32 // descriptors per round
	chaosBatchGroup  = 8  // PostSendBatch size / coalescing window
	chaosBatchBytes  = 64 // inline payload per descriptor
)

// chaosBatchRound runs one burst over a fresh VI pair and checks the
// exactly-once contract on both CQs.
func chaosBatchRound(nw *via.Network, nicA, nicB *via.NIC, round int, res *chaosResult) error {
	coalesce := round%2 == 1
	if coalesce {
		nicA.SetDoorbellCoalesce(chaosBatchGroup)
	} else {
		nicA.SetDoorbellCoalesce(0)
	}
	sendCQ := via.NewCQ(2 * chaosBatchMsgs)
	recvCQ := via.NewCQ(2 * chaosBatchMsgs)
	viA, err := nicA.CreateVIWithCQ(7, sendCQ, nil)
	if err != nil {
		return err
	}
	viB, err := nicB.CreateVIWithCQ(7, nil, recvCQ)
	if err != nil {
		return err
	}
	if err := nw.Connect(viA, viB); err != nil {
		return err
	}

	recvs := make([]*via.Descriptor, chaosBatchMsgs)
	for i := range recvs {
		recvs[i] = via.NewDescriptor(via.OpRecv)
	}
	if err := viB.PostRecvBatch(recvs); err != nil {
		return err
	}

	payload := make([]byte, chaosBatchBytes)
	for i := range payload {
		payload[i] = byte(i*13 + round)
	}
	// Every fourth round cuts the link halfway through the burst, so
	// the fault lands mid-batch while earlier descriptors of the same
	// batch are already on the wire.
	cutAt := -1
	if round%4 == 2 {
		cutAt = chaosBatchMsgs / 2
		res.injected++
	}

	posted := make([]*via.Descriptor, 0, chaosBatchMsgs)
	newSend := func() (*via.Descriptor, error) {
		d := via.NewDescriptor(via.OpSend)
		if err := d.SetInline(payload); err != nil {
			return nil, err
		}
		return d, nil
	}
	for i := 0; i < chaosBatchMsgs; {
		if i == cutAt {
			nw.SetLinkDown(nicA.Name(), nicB.Name())
		}
		if coalesce {
			d, err := newSend()
			if err != nil {
				return err
			}
			if perr := viA.PostSend(d); perr != nil {
				res.loud++ // refused post on an errored VI: typed, not lost
			} else {
				posted = append(posted, d)
			}
			i++
			continue
		}
		batch := make([]*via.Descriptor, 0, chaosBatchGroup)
		for k := 0; k < chaosBatchGroup && i+k < chaosBatchMsgs; k++ {
			d, err := newSend()
			if err != nil {
				return err
			}
			batch = append(batch, d)
		}
		if perr := viA.PostSendBatch(batch); perr != nil {
			res.loud++ // all-or-nothing: the whole batch was refused
		} else {
			posted = append(posted, batch...)
		}
		i += len(batch)
	}
	if cutAt >= 0 {
		defer nw.SetLinkUp(nicA.Name(), nicB.Name())
	}

	// No stranded waiters: every posted send must reach a terminal
	// status (the class watchdog bounds this loop).
	for _, d := range posted {
		if st := d.Wait(); st == via.StatusSuccess {
			// counted below off the receive side, where the payload is
			// actually verified
		} else {
			res.loud++
		}
	}

	// Exactly-once on both CQs.  The completions trail the descriptor
	// status by at most the completing goroutine's CQ push, so drain
	// with a short grace loop before declaring one lost.
	if err := chaosBatchDrainCQ(sendCQ, posted, false, payload, res); err != nil {
		return fmt.Errorf("send CQ: %w", err)
	}
	if err := chaosBatchDrainCQ(recvCQ, recvs, true, payload, res); err != nil {
		return fmt.Errorf("recv CQ: %w", err)
	}
	if d := sendCQ.Dropped() + recvCQ.Dropped(); d != 0 {
		return fmt.Errorf("CQ dropped %d completions with depth > burst", d)
	}
	return nil
}

// chaosBatchDrainCQ drains one CQ and proves every expected descriptor
// completed exactly once — none lost, none double-completed, nothing
// unexpected.  Successful receives also verify the inline payload.
func chaosBatchDrainCQ(cq *via.CQ, expect []*via.Descriptor, recv bool,
	payload []byte, res *chaosResult) error {
	seen := make(map[*via.Descriptor]int, len(expect))
	for _, d := range expect {
		seen[d] = 0
	}
	got := 0
	deadline := time.Now().Add(5 * time.Second)
	for got < len(expect) {
		c, err := cq.Poll()
		if err != nil {
			if time.Now().After(deadline) {
				return fmt.Errorf("lost completions: %d of %d after %v",
					len(expect)-got, len(expect), 5*time.Second)
			}
			time.Sleep(100 * time.Microsecond)
			continue
		}
		n, ok := seen[c.Desc]
		if !ok {
			return fmt.Errorf("completion for a descriptor that was never posted: %+v", c)
		}
		if n != 0 {
			return fmt.Errorf("descriptor double-completed (%d times)", n+1)
		}
		seen[c.Desc] = 1
		got++
		if recv && c.Desc.Status == via.StatusSuccess {
			if c.Desc.Transferred != len(payload) || !bytes.Equal(c.Desc.Inline(), payload) {
				return fmt.Errorf("silent corruption: inline recv delivered %d bytes, pattern mismatch",
					c.Desc.Transferred)
			}
			res.ok++
		}
	}
	if _, err := cq.Poll(); err == nil {
		return fmt.Errorf("CQ holds extra completions beyond the posted burst")
	}
	return nil
}

// chaosBatch is the batched small-message fault class harness.
func chaosBatch() (chaosResult, error) {
	res := chaosResult{class: "batch"}
	base := leakcheck.Snapshot()
	meter := simtime.NewMeter()
	nw := via.NewNetwork()
	nicA := via.NewNIC("batchA", phys.New(64), meter, 256)
	nicB := via.NewNIC("batchB", phys.New(64), meter, 256)
	if err := nw.Attach(nicA); err != nil {
		return res, err
	}
	if err := nw.Attach(nicB); err != nil {
		return res, err
	}
	inj := faultinject.New(chaosSeed)
	inj.FailProb(via.SiteLane, 0.08, nil)
	inj.StallProb(via.SiteLane, 0.15, 200*time.Microsecond)
	inj.FailProb(via.SiteLink, 0.04, nil)
	nicA.SetFaultInjector(inj)
	nicA.StartEngineLanes(2)
	defer nicA.StopEngine()

	for round := 0; round < chaosBatchRounds; round++ {
		err := chaosWatchdog(fmt.Sprintf("batch round %d", round), func() error {
			return chaosBatchRound(nw, nicA, nicB, round, &res)
		})
		if err != nil {
			return res, err
		}
	}

	nicA.SetFaultInjector(nil)
	nicA.SetDoorbellCoalesce(0)
	nicA.StopEngine()
	res.injected += inj.Stats().Total()
	res.nic = sumStats(nicA.Stats(), nicB.Stats())
	st := nicA.Stats()
	if st.BatchPosts == 0 || st.DoorbellsSaved == 0 || st.InlineSends == 0 {
		return res, fmt.Errorf("chaos batch: batching never engaged (batch posts %d, saved doorbells %d, inline sends %d)",
			st.BatchPosts, st.DoorbellsSaved, st.InlineSends)
	}
	if res.injected == 0 || res.nic.Faults == 0 {
		return res, fmt.Errorf("chaos batch: no fault ever landed — the schedule is dead")
	}
	if res.ok == 0 || res.loud == 0 {
		return res, fmt.Errorf("chaos batch: degenerate scoreboard (ok %d, loud %d) — need both deliveries and typed failures",
			res.ok, res.loud)
	}
	if err := leakcheck.Verify(base, 5*time.Second); err != nil {
		return res, fmt.Errorf("class %q: %w", res.class, err)
	}
	return res, nil
}
