package bench

import (
	"fmt"
	"io"
	"os"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/phys"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/via"
)

// obsTraceCapacity sizes the E18 tracer ring: the scenario emits a few
// thousand events, so nothing is dropped and the Chrome export is
// complete.
const obsTraceCapacity = 1 << 15

// obsRegSizes is the registration sweep for the decomposition table
// (kept short — the point is the stage split, not the scaling curve,
// which E3/E4 already show).
var obsRegSizes = []int{1, 4, 16, 64}

// obsRegReps registers each size this many times so the stage means
// average over several identical operations.
const obsRegReps = 8

// Obs regenerates E18: the per-stage latency decomposition measured
// through the observability layer (DESIGN.md §8) — registration cost
// split into kernel-call / pin / TPT-update stages, the data path split
// into DMA / wire / scatter stages per protocol, and the registration
// cache's hit/miss behaviour, all in deterministic virtual time.
func Obs(w io.Writer) error { return ObsRun(w, "", nil) }

// ObsRun is Obs with optional exports: a non-empty tracePath writes the
// scenario's event trace as Chrome trace_event JSON (load it in
// chrome://tracing or Perfetto), and a non-nil metricsOut receives the
// full plain-text registry dump.
func ObsRun(w io.Writer, tracePath string, metricsOut io.Writer) error {
	c, err := cluster.New(cluster.Config{
		Nodes:    2,
		Kernel:   benchKernelConfig(),
		TPTSlots: 4096,
	})
	if err != nil {
		return err
	}
	trc := trace.New(c.Meter, obsTraceCapacity)
	reg := metrics.NewRegistry()
	for _, node := range c.Nodes {
		node.Agent.AttachObs(trc, reg)
		node.NIC.AttachObs(trc, reg)
	}

	if err := obsRegistrationTable(w, c, reg); err != nil {
		return err
	}
	if err := obsDataPathTable(w, c, trc, reg); err != nil {
		return err
	}
	obsTraceSummary(w, trc)

	if metricsOut != nil {
		reg.Fprint(metricsOut)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := trc.WriteChromeSnapshot(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// obsRegHists resolves the registration-stage histograms (shared
// instruments: the registry hands back the same pointers the agent
// records into).
func obsRegHists(reg *metrics.Registry) (kernel, pin, tpt, total, dereg *metrics.Histogram) {
	return reg.Histogram("kagent.reg.kernel.simns"),
		reg.Histogram("kagent.reg.pin.simns"),
		reg.Histogram("kagent.reg.tpt.simns"),
		reg.Histogram("kagent.reg.total.simns"),
		reg.Histogram("kagent.dereg.total.simns")
}

// obsRegistrationTable sweeps registration sizes and decomposes the
// cost per stage from windowed histogram snapshots.
func obsRegistrationTable(w io.Writer, c *cluster.Cluster, reg *metrics.Registry) error {
	node := c.Nodes[0]
	p := node.NewProcess("obs-reg", false)
	tag := via.ProtectionTag(p.ID())
	kernel, pin, tpt, total, dereg := obsRegHists(reg)

	t := report.Table{
		Title:   "E18a: registration cost decomposition (simulated µs, mean over 8 reps)",
		Note:    "kernel = VipRegisterMem ioctl entry, pin = page locking, tpt = NIC table insert; stages sum to total (kiobuf strategy)",
		Headers: []string{"region", "kernel", "pin", "tpt", "total", "dereg"},
	}
	for _, pages := range obsRegSizes {
		buf, err := p.Malloc(pages * phys.PageSize)
		if err != nil {
			return err
		}
		k0, p0, t0, tot0, d0 := kernel.Snapshot(), pin.Snapshot(), tpt.Snapshot(), total.Snapshot(), dereg.Snapshot()
		for rep := 0; rep < obsRegReps; rep++ {
			r, err := node.Agent.RegisterMem(p.AS(), buf.Addr, buf.Bytes, tag, via.MemAttrs{})
			if err != nil {
				return err
			}
			if err := node.Agent.DeregisterMem(r); err != nil {
				return err
			}
		}
		t.AddRow(report.Bytes(pages*phys.PageSize),
			kernel.Snapshot().Delta(k0).Mean()/1000.0,
			pin.Snapshot().Delta(p0).Mean()/1000.0,
			tpt.Snapshot().Delta(t0).Mean()/1000.0,
			total.Snapshot().Delta(tot0).Mean()/1000.0,
			dereg.Snapshot().Delta(d0).Mean()/1000.0)
	}
	t.Fprint(w)
	return nil
}

// obsDataPathTable runs one message per protocol and decomposes the
// descriptor path into its virtual stages, plus the registration
// cache's behaviour underneath the zero-copy path.
func obsDataPathTable(w io.Writer, c *cluster.Cluster, trc *trace.Tracer, reg *metrics.Registry) error {
	ea, eb, err := c.EndpointPair(0, 1, 0)
	if err != nil {
		return err
	}
	ea.AttachObs(trc, reg)
	eb.AttachObs(trc, reg)
	ea.Cache().AttachObs(trc, reg)
	eb.Cache().AttachObs(trc, reg)

	dmaTX := reg.Histogram("via.dma.tx.simns")
	wire := reg.Histogram("via.wire.simns")
	dmaRX := reg.Histogram("via.dma.rx.simns")
	descSend := reg.Histogram("via.desc.send.simns")

	t := report.Table{
		Title:   "E18b: data-path stage decomposition per protocol (simulated µs, mean per descriptor)",
		Note:    "dma-tx = sender DMA startup + per-byte fetch, wire = link crossing, dma-rx = receiver-side placement; desc = post→complete span (eager/one-copy rows include the receive ring's pre-posted descriptors)",
		Headers: []string{"protocol", "size", "descs", "dma-tx", "wire", "dma-rx", "desc"},
	}

	runs := []struct {
		proto msg.Protocol
		size  int
	}{
		{msg.Eager, 4 * 1024},
		{msg.OneCopy, 64 * 1024},
		{msg.ZeroCopy, 256 * 1024},
	}
	for _, run := range runs {
		sb, err := ea.Process().Malloc(run.size)
		if err != nil {
			return err
		}
		rb, err := eb.Process().Malloc(run.size)
		if err != nil {
			return err
		}
		pattern := make([]byte, run.size)
		for i := range pattern {
			pattern[i] = byte(i * 31)
		}
		if err := sb.Write(0, pattern); err != nil {
			return err
		}
		tx0, w0, rx0, d0 := dmaTX.Snapshot(), wire.Snapshot(), dmaRX.Snapshot(), descSend.Snapshot()

		if run.proto == msg.ZeroCopy {
			// The rendezvous handshake needs a live receiver; the
			// RTS → CTS → RDMA → Fin sequence serializes both sides'
			// clock charges, so the trace stays deterministic.
			done := make(chan error, 1)
			go func() {
				_, err := eb.Recv(rb)
				done <- err
			}()
			if _, err := ea.Send(sb, run.proto); err != nil {
				return err
			}
			if err := <-done; err != nil {
				return err
			}
		} else {
			if _, err := ea.Send(sb, run.proto); err != nil {
				return err
			}
			if _, err := eb.Recv(rb); err != nil {
				return err
			}
		}

		dDelta := descSend.Snapshot().Delta(d0)
		t.AddRow(string(run.proto), report.Bytes(run.size),
			fmt.Sprint(dDelta.Count),
			dmaTX.Snapshot().Delta(tx0).Mean()/1000.0,
			wire.Snapshot().Delta(w0).Mean()/1000.0,
			dmaRX.Snapshot().Delta(rx0).Mean()/1000.0,
			dDelta.Mean()/1000.0)
	}
	t.Fprint(w)

	// Cache behaviour under the zero-copy path: the first send of a
	// buffer misses and registers; resending the same buffer hits.
	sb, err := ea.Process().Malloc(256 * 1024)
	if err != nil {
		return err
	}
	rb, err := eb.Process().Malloc(256 * 1024)
	if err != nil {
		return err
	}
	hits := reg.Counter("regcache.hits")
	misses := reg.Counter("regcache.misses")
	h0, m0 := hits.Load(), misses.Load()
	ct := report.Table{
		Title:   "E18c: registration cache behaviour (zero-copy resend of one buffer pair)",
		Note:    "send 1 misses on both sides and registers; later sends hit the cached registrations",
		Headers: []string{"send", "hits", "misses"},
	}
	for i := 1; i <= 3; i++ {
		done := make(chan error, 1)
		go func() {
			_, err := eb.Recv(rb)
			done <- err
		}()
		if _, err := ea.Send(sb, msg.ZeroCopy); err != nil {
			return err
		}
		if err := <-done; err != nil {
			return err
		}
		ct.AddRow(fmt.Sprint(i), fmt.Sprint(hits.Load()-h0), fmt.Sprint(misses.Load()-m0))
	}
	ct.Fprint(w)
	return nil
}

// obsTraceSummary tabulates the trace ring's contents per subsystem.
func obsTraceSummary(w io.Writer, trc *trace.Tracer) {
	events := trc.Snapshot()
	perCat := map[string]uint64{}
	for _, ev := range events {
		perCat[ev.Kind.Category()]++
	}
	t := report.Table{
		Title:   "E18d: trace events by subsystem",
		Note:    fmt.Sprintf("ring capacity %d, %d emitted, %d dropped", trc.Capacity(), trc.Emitted(), trc.Dropped()),
		Headers: []string{"subsystem", "events"},
	}
	for _, cat := range []string{"kagent", "regcache", "via", "msg"} {
		t.AddRow(cat, fmt.Sprint(perCat[cat]))
	}
	t.Fprint(w)
}
